"""The expression language of build-node labels.

Build nodes carry filtering conditions written over the variables of
their incoming builders, e.g. ``$r.sal.value > 11000`` (Figure 3) or
``$p.@pid = $r.@pid`` (Figure 6).  Grouping labels list value
expressions such as ``$p.pname.value`` (Figure 7).

Grammar (hand-rolled recursive-descent parser in :func:`parse_condition`
/ :func:`parse_value_expr`)::

    condition  := comparison ("and" comparison)*
    comparison := operand OP operand         OP ∈ { = != < <= > >= }
    operand    := value-expr | string-literal | number | boolean
    value-expr := "$" NAME ("." segment)*    segment := NAME | @NAME | value

The trailing ``value`` segment denotes the element's text node,
matching the paper's dotted notation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from ..errors import MappingError
from ..xml.model import AtomicValue

_OPERATORS = ("<=", ">=", "!=", "=", "<", ">")


@dataclass(frozen=True)
class VarPath:
    """``$var.seg1.seg2…`` — a projection rooted at a builder variable.

    ``segments`` keeps the dotted form: element names, ``@attr`` for
    attributes, ``value`` for the text node.
    """

    var: str
    segments: tuple[str, ...] = ()

    def __str__(self) -> str:
        return ".".join([f"${self.var}", *self.segments])


@dataclass(frozen=True)
class Literal:
    """A constant operand."""

    value: AtomicValue

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


Operand = Union[VarPath, Literal]


@dataclass(frozen=True)
class Comparison:
    """``left OP right`` with a comparison operator."""

    left: Operand
    op: str
    right: Operand

    def __post_init__(self):
        if self.op not in _OPERATORS:
            raise MappingError(f"unknown comparison operator {self.op!r}")

    def holds(self, left_value: AtomicValue, right_value: AtomicValue) -> bool:
        """Apply the operator to already-evaluated operand values."""
        if self.op == "=":
            return left_value == right_value
        if self.op == "!=":
            return left_value != right_value
        try:
            if self.op == "<":
                return left_value < right_value
            if self.op == "<=":
                return left_value <= right_value
            if self.op == ">":
                return left_value > right_value
            return left_value >= right_value
        except TypeError as exc:
            raise MappingError(
                f"cannot compare {left_value!r} {self.op} {right_value!r}: {exc}"
            ) from exc

    def variables(self) -> set[str]:
        found = set()
        for side in (self.left, self.right):
            if isinstance(side, VarPath):
                found.add(side.var)
        return found

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Condition:
    """A conjunction of comparisons (the label of a build node)."""

    comparisons: tuple[Comparison, ...]

    def variables(self) -> set[str]:
        found: set[str] = set()
        for comparison in self.comparisons:
            found |= comparison.variables()
        return found

    def is_join(self) -> bool:
        """True when some comparison relates two *different* variables —
        the paper's criterion for a Join rather than a filter."""
        return any(len(c.variables()) >= 2 for c in self.comparisons)

    def __str__(self) -> str:
        return " and ".join(str(c) for c in self.comparisons)

    def __bool__(self) -> bool:
        return bool(self.comparisons)


_TOKEN = re.compile(
    r"""\s*(?:
        (?P<varpath>\$[A-Za-z_][\w]*(?:\.(?:@?[A-Za-z_][\w\-]*|value))*)
      | (?P<string>'[^']*'|"[^"]*")
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<op><=|>=|!=|=|<|>)
      | (?P<kw>\band\b|\btrue\b|\bfalse\b)
    )""",
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise MappingError(f"cannot tokenize condition at {remainder!r}")
        pos = match.end()
        for kind in ("varpath", "string", "number", "op", "kw"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


def parse_value_expr(text: str) -> VarPath:
    """Parse a ``$var.path`` expression, e.g. ``$p.pname.value``."""
    text = text.strip()
    if not text.startswith("$"):
        raise MappingError(f"value expression must start with '$': {text!r}")
    segments = text[1:].split(".")
    var, rest = segments[0], segments[1:]
    if not var:
        raise MappingError(f"missing variable name in {text!r}")
    for segment in rest:
        if not segment:
            raise MappingError(f"empty segment in {text!r}")
    return VarPath(var, tuple(rest))


def _operand(kind: str, value: str) -> Operand:
    if kind == "varpath":
        return parse_value_expr(value)
    if kind == "string":
        return Literal(value[1:-1])
    if kind == "number":
        return Literal(float(value) if "." in value else int(value))
    if kind == "kw" and value in ("true", "false"):
        return Literal(value == "true")
    raise MappingError(f"expected an operand, found {value!r}")


def parse_condition(text: Union[str, Condition, None]) -> Condition:
    """Parse a condition label into a :class:`Condition`.

    Accepts an already-parsed condition or ``None`` (empty condition)
    for caller convenience.
    """
    if text is None:
        return Condition(())
    if isinstance(text, Condition):
        return text
    tokens = _tokenize(text)
    comparisons: list[Comparison] = []
    index = 0
    while index < len(tokens):
        if comparisons:
            kind, value = tokens[index]
            if kind != "kw" or value != "and":
                raise MappingError(f"expected 'and' between comparisons, found {value!r}")
            index += 1
        if index + 2 >= len(tokens) + 1 and index + 2 > len(tokens):
            raise MappingError(f"truncated comparison in condition {text!r}")
        try:
            left = _operand(*tokens[index])
            op_kind, op_value = tokens[index + 1]
            right = _operand(*tokens[index + 2])
        except IndexError:
            raise MappingError(f"truncated comparison in condition {text!r}") from None
        if op_kind != "op":
            raise MappingError(f"expected a comparison operator, found {op_value!r}")
        comparisons.append(Comparison(left, op_value, right))
        index += 3
    if not comparisons:
        raise MappingError(f"empty condition {text!r}")
    return Condition(tuple(comparisons))
