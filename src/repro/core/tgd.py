"""Nested second-order tgds — the semantics of Clip mappings (Section IV).

An explicit mapping is a (nested) tuple-generating dependency::

    M ::= ∀ x1 ∈ g1, …, xn ∈ gn | C1 →
          ∃ y1 ∈ g'1, …, yn ∈ g'n | (C2 ∧ M1 ∧ … ∧ Mn)

Expressions are ``e ::= S | x | e.l`` (schema root, variable, record
projection); terms add function application ``F[e]``.  Second-order
function symbols — the grouping Skolem ``group-by`` and aggregates
``count``/``avg``/… — are existentially quantified at the top of the
formula, mirroring the paper's ``∃ group-by( … )`` notation.

The pretty printer reproduces the paper's notation so that every tgd
printed in Sections IV–V can be asserted verbatim in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from ..xml.model import AtomicValue
from .functions import AggregateFunction, ScalarFunction

# -- expressions ---------------------------------------------------------


@dataclass(frozen=True)
class SchemaRoot:
    """The root of the source or target schema (``source``, ``target``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Var:
    """A universally or existentially quantified variable."""

    name: str

    def __str__(self) -> str:
        return _prime(self.name)


@dataclass(frozen=True)
class Proj:
    """Record projection ``e.l``; the label may be an element name,
    ``@attr``, or ``value`` (the text node)."""

    base: "TgdExpr"
    label: str

    def __str__(self) -> str:
        return f"{self.base}.{self.label}"


TgdExpr = Union[SchemaRoot, Var, Proj]


@dataclass(frozen=True)
class Constant:
    """A constant term in a condition."""

    value: AtomicValue

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


def proj_path(base: TgdExpr, labels) -> TgdExpr:
    """Fold a sequence of labels into nested projections."""
    expr: TgdExpr = base
    for label in labels:
        expr = Proj(expr, label)
    return expr


def expr_root(expr: TgdExpr) -> Union[SchemaRoot, Var]:
    """The head (schema root or variable) of a projection chain."""
    while isinstance(expr, Proj):
        expr = expr.base
    return expr


def expr_labels(expr: TgdExpr) -> list[str]:
    """The projection labels of an expression, outermost last."""
    labels: list[str] = []
    while isinstance(expr, Proj):
        labels.append(expr.label)
        expr = expr.base
    labels.reverse()
    return labels


def _prime(name: str) -> str:
    """Render trailing apostrophes as primes (``d'`` → ``d′``)."""
    return name.replace("'", "′")


# -- generators ----------------------------------------------------------


@dataclass(frozen=True)
class SourceGenerator:
    """``x ∈ g`` on the source side.  ``g`` may be a projection chain
    over the source root or an outer variable — or a bare variable
    denoting a *group* (membership iteration, Figure 7's ``p2 ∈ p``)."""

    var: str
    expr: TgdExpr

    def __str__(self) -> str:
        return f"{_prime(self.var)} ∈ {self.expr}"


@dataclass(frozen=True)
class TargetGenerator:
    """``y ∈ g′`` on the target side.

    ``quantified=False`` marks elements that appear in the printed tgd
    but are *not* driven by a builder; the paper's minimum-cardinality
    principle turns them into constant tags during query generation
    ("we enforce minimum cardinality in the generated XQuery, not in
    the tgd expressions", Section IV-B).

    ``distribute=True`` marks unquantified elements that *are* built by
    a different, non-ancestor build node of the same mapping: the
    content distributes over every instance that the other builder
    creates.  This reproduces the paper's Figure 4 variant — "omitting
    the context arc causes all employees … to appear, repeated, within
    all departments".
    """

    var: str
    expr: TgdExpr
    quantified: bool = True
    distribute: bool = False

    def __str__(self) -> str:
        return f"{_prime(self.var)} ∈ {self.expr}"


# -- conditions ------------------------------------------------------------

Operand = Union[TgdExpr, Constant]


@dataclass(frozen=True)
class TgdComparison:
    """``a1 oper a2`` in C1 (source) or C2 (target-side conditions)."""

    left: Operand
    op: str
    right: Operand

    def holds(self, left_value: AtomicValue, right_value: AtomicValue) -> bool:
        """Apply the operator to already-evaluated operand values."""
        if self.op == "=":
            return left_value == right_value
        if self.op == "!=":
            return left_value != right_value
        if self.op == "<":
            return left_value < right_value
        if self.op == "<=":
            return left_value <= right_value
        if self.op == ">":
            return left_value > right_value
        if self.op == ">=":
            return left_value >= right_value
        raise ValueError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class Membership:
    """``e1 ∈ e2`` — set membership, used by hierarchy inversion
    (Figure 8's ``p ∈ d2.Proj``)."""

    member: TgdExpr
    collection: TgdExpr

    def __str__(self) -> str:
        return f"{self.member} ∈ {self.collection}"


SourceCondition = Union[TgdComparison, Membership]


# -- target-side terms -------------------------------------------------------


@dataclass(frozen=True)
class FunctionApp:
    """Application of a scalar function: ``concat[e1, e2]``."""

    function: ScalarFunction
    args: tuple[TgdExpr, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.function.name}[{inner}]"


@dataclass(frozen=True)
class AggregateApp:
    """Application of an aggregate: ``count(d.Proj)``, ``avg(d.regEmp.sal.value)``."""

    function: AggregateFunction
    arg: TgdExpr

    def __str__(self) -> str:
        return f"{self.function.name}({self.arg})"


@dataclass(frozen=True)
class GroupByApp:
    """The grouping Skolem: ``group-by(context, [attrs])``.

    ``context`` is the list of already-bound target variables that
    restrict the grouping scope, or ``None`` for ⊥ (the whole data set).
    """

    context: Optional[tuple[str, ...]]
    attrs: tuple[TgdExpr, ...]

    def __str__(self) -> str:
        scope = "⊥" if not self.context else ", ".join(_prime(c) for c in self.context)
        attrs = ", ".join(str(a) for a in self.attrs)
        return f"group-by({scope}, [{attrs}])"


Term = Union[TgdExpr, Constant, FunctionApp, AggregateApp]


@dataclass(frozen=True)
class Assignment:
    """A source-to-target equality in C2: ``e′.@name = r.ename.value``."""

    target: TgdExpr
    value: Term

    def __str__(self) -> str:
        return f"{self.target} = {self.value}"


# -- the mapping -------------------------------------------------------------


@dataclass(frozen=True)
class TgdMapping:
    """One (sub)mapping level of a nested tgd."""

    source_gens: tuple[SourceGenerator, ...]
    where: tuple[SourceCondition, ...]
    target_gens: tuple[TargetGenerator, ...]
    assignments: tuple[Assignment, ...]
    submappings: tuple["TgdMapping", ...] = ()
    #: When set, this level groups: (target var, group-by application,
    #: source var that denotes the group in submappings).
    skolem: Optional[tuple[str, GroupByApp]] = None
    grouped_var: Optional[str] = None

    def walk(self) -> Iterator["TgdMapping"]:
        yield self
        for sub in self.submappings:
            yield from sub.walk()

    def built_vars(self) -> list[str]:
        return [g.var for g in self.target_gens if g.quantified]


def derive_distribution(roots: tuple["TgdMapping", ...]) -> tuple["TgdMapping", ...]:
    """Mark unquantified target generators whose element another mapping
    builds as *distributed* (the compiler's Figure 4 no-arc rule), so
    independently produced tgds (default generation, parsed notation)
    behave like compiled ones."""
    built: set[str] = set()
    for root in roots:
        for level in root.walk():
            for gen in level.target_gens:
                if gen.quantified and isinstance(gen.expr, Proj):
                    built.add(gen.expr.label)

    def fix(mapping: "TgdMapping", own_built: set[str]) -> "TgdMapping":
        gens = tuple(
            TargetGenerator(
                g.var,
                g.expr,
                quantified=g.quantified,
                distribute=(
                    not g.quantified
                    and isinstance(g.expr, Proj)
                    and g.expr.label in built
                    and g.expr.label not in own_built
                ),
            )
            for g in mapping.target_gens
        )
        return TgdMapping(
            source_gens=mapping.source_gens,
            where=mapping.where,
            target_gens=gens,
            assignments=mapping.assignments,
            submappings=tuple(fix(s, own_built) for s in mapping.submappings),
            skolem=mapping.skolem,
            grouped_var=mapping.grouped_var,
        )

    out = []
    for root in roots:
        own: set[str] = set()
        for level in root.walk():
            for gen in level.target_gens:
                if gen.quantified and isinstance(gen.expr, Proj):
                    own.add(gen.expr.label)
        out.append(fix(root, own))
    return tuple(out)


@dataclass(frozen=True)
class NestedTgd:
    """A complete nested tgd: top-level function symbols + root mappings."""

    roots: tuple[TgdMapping, ...]
    functions: tuple[str, ...] = ()
    source_root: str = "source"
    target_root: str = "target"

    def walk(self) -> Iterator[TgdMapping]:
        for root in self.roots:
            yield from root.walk()

    def __str__(self) -> str:
        return render_tgd(self)


# -- pretty printer -----------------------------------------------------------


def render_tgd(tgd: NestedTgd, *, indent: str = "  ") -> str:
    """Render a nested tgd in the paper's notation."""
    lines: list[str] = []
    prefix = ""
    if tgd.functions:
        lines.append(f"∃ {', '.join(tgd.functions)}(")
        prefix = indent
    for index, root in enumerate(tgd.roots):
        _render_mapping(root, lines, prefix, indent, last=index == len(tgd.roots) - 1)
    if tgd.functions:
        lines[-1] = lines[-1] + ")"
    return "\n".join(lines)


def _render_mapping(m: TgdMapping, lines: list[str], pad: str, indent: str, last: bool) -> None:
    cond = ""
    if m.where:
        cond = " | " + ", ".join(str(c) for c in m.where)
    arrow = " →" if (m.target_gens or m.assignments or m.submappings) else ""
    if m.source_gens:
        gens = ", ".join(str(g) for g in m.source_gens)
        lines.append(f"{pad}∀ {gens}{cond}{arrow}")
    else:
        # No generators of its own (everything bound by the ancestor):
        # a purely existential level.
        lines.append(f"{pad}∀ ⊤{cond}{arrow}")
    body_pad = pad + indent
    rhs_parts: list[str] = []
    if m.target_gens:
        tgens = ", ".join(str(g) for g in m.target_gens)
        head = f"{body_pad}∃ {tgens}"
        if m.assignments or m.skolem:
            head += " |"
        rhs_parts.append(head)
    terms: list[str] = []
    if m.skolem is not None:
        var, app = m.skolem
        terms.append(f"{_prime(var)} = {app}")
    terms.extend(str(a) for a in m.assignments)
    for index, term in enumerate(terms):
        suffix = "," if index < len(terms) - 1 or m.submappings else ""
        rhs_parts.append(f"{body_pad}{indent}{term}{suffix}")
    lines.extend(rhs_parts)
    for index, sub in enumerate(m.submappings):
        sub_lines: list[str] = []
        _render_mapping(sub, sub_lines, body_pad + indent, indent, last=True)
        sub_lines[0] = sub_lines[0].replace(body_pad + indent, body_pad + indent + "[", 1)
        sub_lines[-1] = sub_lines[-1] + "]"
        if index < len(m.submappings) - 1:
            sub_lines[-1] += ","
        lines.extend(sub_lines)
