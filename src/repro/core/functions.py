"""Scalar and aggregate functions attachable to value mappings.

"Simple one-to-one value mappings represent the identity function …
More complicated transformations require the user to add a scalar
function … For example, value mappings can concatenate multiple source
values or perform an arithmetic operation" (Section II).  Aggregate
functions (``<<count>>``, ``<<avg>>`` …) condense a set of values into
one (Figure 9).

Scalar functions are registered by name so that the tgd pretty-printer
and the XQuery emitter can render them symbolically; the executor and
the XQuery interpreter share the same implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import MappingError
from ..xml.model import AtomicValue


@dataclass(frozen=True)
class ScalarFunction:
    """A named n-ary function over atomic values."""

    name: str
    arity: int  # -1 for variadic
    _impl: Callable[..., AtomicValue]

    def apply(self, args: Sequence[AtomicValue]) -> AtomicValue:
        if self.arity >= 0 and len(args) != self.arity:
            raise MappingError(
                f"function {self.name} expects {self.arity} arguments, got {len(args)}"
            )
        return self._impl(*args)

    def __str__(self) -> str:
        return self.name


def _concat(*args: AtomicValue) -> str:
    return "".join(str(a) for a in args)


def _require_numbers(args: Sequence[AtomicValue], fn: str) -> list[float]:
    numbers: list[float] = []
    for a in args:
        if isinstance(a, bool) or not isinstance(a, (int, float)):
            raise MappingError(f"function {fn} requires numeric arguments, got {a!r}")
        numbers.append(a)
    return numbers


def _add(*args):
    return _sum_preserving_int(_require_numbers(args, "add"))


def _subtract(a, b):
    x, y = _require_numbers([a, b], "subtract")
    return _int_if_integral(x - y)


def _multiply(*args):
    product = 1.0
    for n in _require_numbers(args, "multiply"):
        product *= n
    return _int_if_integral(product)


def _divide(a, b):
    x, y = _require_numbers([a, b], "divide")
    if y == 0:
        raise MappingError("division by zero in scalar function")
    return _int_if_integral(x / y)


def _int_if_integral(value: float) -> AtomicValue:
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _sum_preserving_int(numbers: Sequence[float]) -> AtomicValue:
    total = sum(numbers)
    return _int_if_integral(float(total))


# Implementations are module-level named functions, never lambdas:
# compiled tgds (which reference these objects) must pickle across the
# batch runner's worker-pool boundary.
def _identity(v: AtomicValue) -> AtomicValue:
    return v


def _upper(v: AtomicValue) -> str:
    return str(v).upper()


def _lower(v: AtomicValue) -> str:
    return str(v).lower()


IDENTITY = ScalarFunction("identity", 1, _identity)
CONCAT = ScalarFunction("concat", -1, _concat)
ADD = ScalarFunction("add", -1, _add)
SUBTRACT = ScalarFunction("subtract", 2, _subtract)
MULTIPLY = ScalarFunction("multiply", -1, _multiply)
DIVIDE = ScalarFunction("divide", 2, _divide)
UPPER = ScalarFunction("upper", 1, _upper)
LOWER = ScalarFunction("lower", 1, _lower)

SCALAR_FUNCTIONS: dict[str, ScalarFunction] = {
    f.name: f
    for f in (IDENTITY, CONCAT, ADD, SUBTRACT, MULTIPLY, DIVIDE, UPPER, LOWER)
}


def scalar(name: str) -> ScalarFunction:
    """Look up a registered scalar function by name."""
    try:
        return SCALAR_FUNCTIONS[name]
    except KeyError:
        raise MappingError(f"unknown scalar function {name!r}") from None


@dataclass(frozen=True)
class AggregateFunction:
    """A named function condensing a sequence of values into one.

    ``count`` counts *items* (elements or values); the numeric
    aggregates first atomize their input (elements contribute their
    text values, as XPath does).
    """

    name: str
    _impl: Callable[[Sequence[AtomicValue]], AtomicValue]
    counts_items: bool = False

    def apply(self, values: Sequence) -> AtomicValue:
        if self.counts_items:
            return len(values)
        from ..xml.paths import atomize  # late import avoids a cycle

        atoms = atomize(list(values))
        return self._impl(atoms)

    def __str__(self) -> str:
        return self.name


def _avg(values: Sequence[AtomicValue]) -> AtomicValue:
    numbers = _require_numbers(values, "avg")
    if not numbers:
        raise MappingError("avg over an empty sequence")
    return _int_if_integral(sum(numbers) / len(numbers))


def _minmax(values, fn, name):
    if not values:
        raise MappingError(f"{name} over an empty sequence")
    return fn(values)


def _agg_sum(values: Sequence[AtomicValue]) -> AtomicValue:
    return _sum_preserving_int(_require_numbers(values, "sum"))


def _agg_min(values: Sequence[AtomicValue]) -> AtomicValue:
    return _minmax(values, min, "min")


def _agg_max(values: Sequence[AtomicValue]) -> AtomicValue:
    return _minmax(values, max, "max")


COUNT = AggregateFunction("count", len, counts_items=True)
SUM = AggregateFunction("sum", _agg_sum)
AVG = AggregateFunction("avg", _avg)
MIN = AggregateFunction("min", _agg_min)
MAX = AggregateFunction("max", _agg_max)

AGGREGATE_FUNCTIONS: dict[str, AggregateFunction] = {
    f.name: f for f in (COUNT, SUM, AVG, MIN, MAX)
}


def aggregate(name: str) -> AggregateFunction:
    """Look up a registered aggregate function by name."""
    try:
        return AGGREGATE_FUNCTIONS[name]
    except KeyError:
        raise MappingError(f"unknown aggregate function {name!r}") from None
