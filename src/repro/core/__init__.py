"""The Clip language: mappings, validity, tgd semantics, compilation."""

from .compile import compile_clip
from .expr import Comparison, Condition, Literal, VarPath, parse_condition, parse_value_expr
from .functions import (
    AGGREGATE_FUNCTIONS,
    SCALAR_FUNCTIONS,
    AggregateFunction,
    ScalarFunction,
    aggregate,
    scalar,
)
from .mapping import BuilderArc, BuildNode, ClipMapping, ValueMapping
from .tgd import (
    AggregateApp,
    Assignment,
    Constant,
    FunctionApp,
    GroupByApp,
    Membership,
    NestedTgd,
    Proj,
    SchemaRoot,
    SourceGenerator,
    TargetGenerator,
    TgdComparison,
    TgdMapping,
    Var,
    render_tgd,
)
from .tgd_parser import parse_tgd
from .validity import ValidityIssue, ValidityReport, check, find_driver

__all__ = [
    "ClipMapping",
    "BuildNode",
    "BuilderArc",
    "ValueMapping",
    "compile_clip",
    "check",
    "find_driver",
    "ValidityReport",
    "ValidityIssue",
    "Condition",
    "Comparison",
    "VarPath",
    "Literal",
    "parse_condition",
    "parse_value_expr",
    "ScalarFunction",
    "AggregateFunction",
    "scalar",
    "aggregate",
    "SCALAR_FUNCTIONS",
    "AGGREGATE_FUNCTIONS",
    "NestedTgd",
    "TgdMapping",
    "SourceGenerator",
    "TargetGenerator",
    "TgdComparison",
    "Membership",
    "Assignment",
    "AggregateApp",
    "FunctionApp",
    "GroupByApp",
    "SchemaRoot",
    "Var",
    "Proj",
    "Constant",
    "render_tgd",
    "parse_tgd",
]
