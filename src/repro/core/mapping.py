"""The Clip mapping object model.

A :class:`ClipMapping` is the programmatic equivalent of a Clip diagram:
a source schema on the left, a target schema on the right, and between
them

* **value mappings** (:class:`ValueMapping`) — thin arrows between value
  nodes, optionally tagged with a scalar or aggregate function;
* **builders** routed through **build nodes** (:class:`BuildNode`),
  chained by **context arcs** into **context propagation trees**;
  group nodes are build nodes with a ``group-by`` label.

"Drawing a line" in the GUI corresponds to one method call here:
:meth:`ClipMapping.build` draws a builder through a fresh build node,
:meth:`ClipMapping.context` draws a builder into a context-only node
(no outgoing builder), :meth:`ClipMapping.group` draws a group node,
and :meth:`ClipMapping.value` draws a value mapping.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..errors import MappingError
from ..xsd.schema import ElementDecl, Schema, ValueNode
from .expr import Condition, VarPath, parse_condition, parse_value_expr
from .functions import AggregateFunction, ScalarFunction, aggregate as _aggregate

#: A value-mapping source: a value node, or (for ``<<count>>``) an element.
ValueSource = Union[ValueNode, ElementDecl]


class ValueMapping:
    """A correspondence between source value node(s) and a target value node.

    With no function, a single source value is copied (identity).  With
    a :class:`ScalarFunction`, several source values are combined into
    one.  With an :class:`AggregateFunction`, the *set* of source values
    (or elements, for ``count``) within the driver's context condenses
    into a single value — the ``⟨⟨count⟩⟩`` / ``⟨⟨avg⟩⟩`` labels of
    Figure 9.
    """

    def __init__(
        self,
        sources: Sequence[ValueSource],
        target: ValueNode,
        function: Optional[ScalarFunction] = None,
        aggregate: Optional[AggregateFunction] = None,
    ):
        if not sources:
            raise MappingError("a value mapping needs at least one source node")
        if function is not None and aggregate is not None:
            raise MappingError("a value mapping cannot carry both a scalar and an aggregate")
        if aggregate is None:
            for node in sources:
                if isinstance(node, ElementDecl):
                    raise MappingError(
                        "only aggregate value mappings may start from elements "
                        f"(source {node.path_string()!r})"
                    )
            if function is None and len(sources) > 1:
                raise MappingError(
                    "a multi-source value mapping requires a scalar function"
                )
        self.sources: tuple[ValueSource, ...] = tuple(sources)
        self.target = target
        self.function = function
        self.aggregate = aggregate

    @property
    def is_aggregate(self) -> bool:
        return self.aggregate is not None

    def source_elements(self) -> list[ElementDecl]:
        """The elements holding each source (the element itself for
        element sources)."""
        return [
            node if isinstance(node, ElementDecl) else node.element
            for node in self.sources
        ]

    def __repr__(self) -> str:
        tag = ""
        if self.aggregate is not None:
            tag = f" <<{self.aggregate.name}>>"
        elif self.function is not None:
            tag = f" [{self.function.name}]"
        sources = ", ".join(
            s.path_string() if isinstance(s, ElementDecl) else str(s) for s in self.sources
        )
        return f"ValueMapping({sources} ->{tag} {self.target})"


class BuilderArc:
    """An incoming builder: a thick arrow from a source element into a
    build node, optionally tagged with a variable (``$r``)."""

    def __init__(self, source: ElementDecl, variable: Optional[str] = None):
        self.source = source
        self.variable = variable

    def __repr__(self) -> str:
        tag = f" ${self.variable}" if self.variable else ""
        return f"BuilderArc({self.source.path_string()}{tag})"


class BuildNode:
    """An annotated node between the schemas.

    Build nodes have 1..n incoming builders, 0..1 incoming context arcs
    (the ``parent``), 0..1 outgoing builders (``target``) and 0..n
    outgoing context arcs (``children``).  A node with ``grouping``
    expressions is a *group node*.
    """

    def __init__(
        self,
        incoming: Sequence[BuilderArc],
        target: Optional[ElementDecl] = None,
        condition: Optional[Condition] = None,
        grouping: Sequence[VarPath] = (),
    ):
        if not incoming:
            raise MappingError("a build node needs at least one incoming builder")
        self.incoming: tuple[BuilderArc, ...] = tuple(incoming)
        self.target = target
        self.condition = condition if condition else None
        self.grouping: tuple[VarPath, ...] = tuple(grouping)
        self.parent: Optional[BuildNode] = None
        self._children: list[BuildNode] = []
        self._check_variables()

    def _check_variables(self) -> None:
        names = [arc.variable for arc in self.incoming if arc.variable]
        if len(names) != len(set(names)):
            raise MappingError(f"duplicate builder variables {names}")

    @property
    def children(self) -> tuple["BuildNode", ...]:
        return tuple(self._children)

    @property
    def is_group(self) -> bool:
        return bool(self.grouping)

    @property
    def has_output(self) -> bool:
        return self.target is not None

    def attach(self, child: "BuildNode") -> "BuildNode":
        """Draw a context arc from this node to ``child``."""
        if child.parent is not None:
            raise MappingError("build node already has an incoming context arc")
        child.parent = self
        self._children.append(child)
        return child

    def ancestors(self) -> list["BuildNode"]:
        """CPT ancestors, nearest first."""
        chain: list[BuildNode] = []
        node = self.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    def subtree(self) -> Iterable["BuildNode"]:
        """This node and all CPT descendants, pre-order."""
        yield self
        for child in self._children:
            yield from child.subtree()

    def arcs_in_scope(self) -> list[tuple["BuildNode", BuilderArc]]:
        """All incoming arcs visible at this node: its own plus its
        ancestors', nearest scope first."""
        found: list[tuple[BuildNode, BuilderArc]] = [
            (self, arc) for arc in self.incoming
        ]
        for ancestor in self.ancestors():
            found.extend((ancestor, arc) for arc in ancestor.incoming)
        return found

    def variable_arc(self, name: str) -> tuple["BuildNode", BuilderArc]:
        """Resolve a variable to its (node, arc), searching up the CPT."""
        for node, arc in self.arcs_in_scope():
            if arc.variable == name:
                return node, arc
        raise MappingError(f"variable ${name} is not bound at this build node")

    def __repr__(self) -> str:
        incoming = ",".join(
            f"${a.variable}" if a.variable else a.source.name for a in self.incoming
        )
        output = f" -> {self.target.path_string()}" if self.target else ""
        group = f" group-by[{', '.join(map(str, self.grouping))}]" if self.is_group else ""
        cond = f" | {self.condition}" if self.condition else ""
        return f"BuildNode({incoming}{output}{group}{cond})"


class ClipMapping:
    """A complete Clip mapping: schemas, value mappings and CPTs."""

    def __init__(self, source: Schema, target: Schema):
        self.source = source
        self.target = target
        self.value_mappings: list[ValueMapping] = []
        self.roots: list[BuildNode] = []
        self._fresh = 0

    # -- construction API (one call per GUI gesture) ---------------------

    def _source_element(self, path: Union[str, ElementDecl]) -> ElementDecl:
        return self.source.element(path) if isinstance(path, str) else path

    def _target_element(self, path: Union[str, ElementDecl]) -> ElementDecl:
        return self.target.element(path) if isinstance(path, str) else path

    def _fresh_variable(self) -> str:
        self._fresh += 1
        return f"v{self._fresh}"

    def _make_node(
        self,
        sources: Union[str, ElementDecl, Sequence[Union[str, ElementDecl]]],
        target: Optional[Union[str, ElementDecl]],
        var: Optional[Union[str, Sequence[str]]],
        condition: Optional[Union[str, Condition]],
        grouping: Sequence[Union[str, VarPath]],
        parent: Optional[BuildNode],
    ) -> BuildNode:
        if isinstance(sources, (str, ElementDecl)):
            sources = [sources]
        if var is None:
            variables: list[Optional[str]] = [None] * len(sources)
        elif isinstance(var, str):
            variables = [var]
        else:
            variables = list(var)
        if len(variables) != len(sources):
            raise MappingError(
                f"{len(sources)} incoming builders but {len(variables)} variables"
            )
        arcs = [
            BuilderArc(self._source_element(path), name)
            for path, name in zip(sources, variables)
        ]
        parsed_condition = parse_condition(condition) if condition else None
        parsed_grouping = tuple(
            parse_value_expr(g) if isinstance(g, str) else g for g in grouping
        )
        node = BuildNode(
            arcs,
            target=self._target_element(target) if target is not None else None,
            condition=parsed_condition,
            grouping=parsed_grouping,
        )
        if parent is not None:
            parent.attach(node)
        else:
            self.roots.append(node)
        return node

    def build(
        self,
        sources: Union[str, ElementDecl, Sequence[Union[str, ElementDecl]]],
        target: Union[str, ElementDecl],
        *,
        var: Optional[Union[str, Sequence[str]]] = None,
        condition: Optional[Union[str, Condition]] = None,
        parent: Optional[BuildNode] = None,
    ) -> BuildNode:
        """Draw builder(s) through a fresh build node into ``target``."""
        return self._make_node(sources, target, var, condition, (), parent)

    def context(
        self,
        sources: Union[str, ElementDecl, Sequence[Union[str, ElementDecl]]],
        *,
        var: Optional[Union[str, Sequence[str]]] = None,
        condition: Optional[Union[str, Condition]] = None,
        parent: Optional[BuildNode] = None,
    ) -> BuildNode:
        """Draw builder(s) into a context-only build node (no outgoing
        builder) — the topmost node of Figure 6."""
        return self._make_node(sources, None, var, condition, (), parent)

    def group(
        self,
        sources: Union[str, ElementDecl, Sequence[Union[str, ElementDecl]]],
        target: Union[str, ElementDecl],
        *,
        by: Sequence[Union[str, VarPath]],
        var: Optional[Union[str, Sequence[str]]] = None,
        condition: Optional[Union[str, Condition]] = None,
        parent: Optional[BuildNode] = None,
    ) -> BuildNode:
        """Draw a group node (``group-by`` label, Figure 7)."""
        if not by:
            raise MappingError("a group node needs at least one grouping attribute")
        return self._make_node(sources, target, var, condition, by, parent)

    def value(
        self,
        sources: Union[str, ValueNode, Sequence[Union[str, ValueNode]]],
        target: Union[str, ValueNode],
        *,
        function: Optional[ScalarFunction] = None,
    ) -> ValueMapping:
        """Draw a value mapping (thin arrow between value nodes)."""
        mapping = ValueMapping(
            self._resolve_value_sources(sources),
            self._resolve_target_value(target),
            function=function,
        )
        self.value_mappings.append(mapping)
        return mapping

    def value_aggregate(
        self,
        name: str,
        sources: Union[str, ValueNode, ElementDecl, Sequence],
        target: Union[str, ValueNode],
    ) -> ValueMapping:
        """Draw an aggregate value mapping (``⟨⟨count⟩⟩`` etc.).

        ``count`` sources may be element paths; the numeric aggregates
        take value-node paths.
        """
        mapping = ValueMapping(
            self._resolve_value_sources(sources, allow_elements=True),
            self._resolve_target_value(target),
            aggregate=_aggregate(name),
        )
        self.value_mappings.append(mapping)
        return mapping

    def _resolve_value_sources(self, sources, allow_elements=False) -> list[ValueSource]:
        if isinstance(sources, (str, ValueNode, ElementDecl)):
            sources = [sources]
        resolved: list[ValueSource] = []
        for item in sources:
            if isinstance(item, str):
                node = self.source.node(item)
            else:
                node = item
            if isinstance(node, ElementDecl) and not allow_elements:
                raise MappingError(
                    f"value mapping source {node.path_string()!r} is an element; "
                    "use value_aggregate('count', …) for element sources"
                )
            resolved.append(node)
        return resolved

    def _resolve_target_value(self, target) -> ValueNode:
        if isinstance(target, str):
            node = self.target.node(target)
        else:
            node = target
        if not isinstance(node, ValueNode):
            raise MappingError(f"value mapping target must be a value node, got {node!r}")
        return node

    # -- inspection ------------------------------------------------------

    def build_nodes(self) -> list[BuildNode]:
        """All build nodes of all CPTs, pre-order."""
        found: list[BuildNode] = []
        for root in self.roots:
            found.extend(root.subtree())
        return found

    def builders_to(self, target: ElementDecl) -> list[BuildNode]:
        """The build nodes whose outgoing builder reaches ``target``."""
        return [node for node in self.build_nodes() if node.target is target]

    def has_builders(self) -> bool:
        return bool(self.roots)

    def __repr__(self) -> str:
        return (
            f"ClipMapping({self.source.root.name} -> {self.target.root.name}, "
            f"{len(self.value_mappings)} value mappings, "
            f"{len(self.build_nodes())} build nodes)"
        )
