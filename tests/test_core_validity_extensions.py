"""Tests for the validity rules beyond Section III.

Systematic enumeration over the Table I scenarios surfaced drawable
diagrams the paper never gives a semantics for; `DISTRIBUTION_SCOPE`
and `GROUP_CONTEXT` mark them invalid (see EXPERIMENTS.md, deviations).
"""

from __future__ import annotations

import pytest

from repro.core.mapping import ClipMapping
from repro.core.validity import check
from repro.scenarios import deptstore


class TestDistributionScope:
    def test_root_level_distribution_is_valid(self):
        """The paper's Figure 4 no-arc shape: two independent trees."""
        clip = deptstore.mapping_fig4(context_arc=False)
        assert check(clip).is_valid

    def test_distribution_from_inside_a_cpt_is_invalid(self, source_schema, departments_target):
        """An employee builder under a context node, crossing a
        department another tree builds: ambiguous containment."""
        clip = ClipMapping(source_schema, departments_target)
        clip.build("dept", "department", var="d")          # independent tree
        ctx = clip.context("dept", var="c")
        clip.build("dept/regEmp", "department/employee", var="r", parent=ctx)
        clip.value("dept/regEmp/ename/value", "department/employee/@name")
        report = check(clip)
        assert report.by_rule("DISTRIBUTION_SCOPE")

    def test_sibling_distribution_in_same_tree_is_invalid(self, source_schema, departments_target):
        """Both nodes under one context node: the child should be
        attached below the department builder instead."""
        clip = ClipMapping(source_schema, departments_target)
        ctx = clip.context("dept", var="c")
        clip.build("dept", "department", var="d", parent=ctx)
        clip.build("dept/regEmp", "department/employee", var="r", parent=ctx)
        clip.value("dept/regEmp/ename/value", "department/employee/@name")
        assert check(clip).by_rule("DISTRIBUTION_SCOPE")

    def test_properly_nested_builder_is_valid(self):
        assert check(deptstore.mapping_fig4()).is_valid

    def test_wrapper_without_other_builder_is_valid(self):
        """fig3: department is a plain constant tag — nobody builds it."""
        assert check(deptstore.mapping_fig3()).is_valid


class TestGroupContext:
    def test_group_at_root_is_valid(self):
        assert check(deptstore.mapping_fig7()).is_valid

    def test_group_under_built_ancestor_is_valid(self, source_schema):
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import STRING

        target = schema(
            elem(
                "t",
                elem(
                    "department",
                    "[1..*]",
                    elem("project", "[0..*]", attr("name", STRING, required=False)),
                ),
            )
        )
        clip = ClipMapping(source_schema, target)
        dept = clip.build("dept", "department", var="d")
        clip.group("dept/Proj", "department/project", var="p",
                   by=["$p.pname.value"], parent=dept)
        clip.value("dept/Proj/pname/value", "department/project/@name")
        assert check(clip).is_valid

    def test_group_under_context_only_node_is_invalid(self, source_schema):
        clip = ClipMapping(source_schema, deptstore.target_schema_grouped_projects())
        ctx = clip.context("dept", var="c")
        clip.group("dept/Proj", "project", var="p",
                   by=["$p.pname.value"], parent=ctx)
        clip.value("dept/Proj/pname/value", "project/@name")
        report = check(clip)
        assert report.by_rule("GROUP_CONTEXT")

    def test_engines_agree_on_group_under_built_ancestor(self, source_schema):
        """The supported nested-grouping shape stays cross-checked."""
        from repro.core.compile import compile_clip
        from repro.executor import execute
        from repro.xquery import emit_xquery, run_query
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import STRING

        target = schema(
            elem(
                "t",
                elem(
                    "department",
                    "[1..*]",
                    attr("name", STRING, required=False),
                    elem("project", "[0..*]", attr("name", STRING, required=False)),
                ),
            )
        )
        clip = ClipMapping(source_schema, target)
        dept = clip.build("dept", "department", var="d")
        clip.group("dept/Proj", "department/project", var="p",
                   by=["$p.pname.value"], parent=dept)
        clip.value("dept/dname/value", "department/@name")
        clip.value("dept/Proj/pname/value", "department/project/@name")
        tgd = compile_clip(clip)
        instance = deptstore.source_instance()
        assert execute(tgd, instance) == run_query(emit_xquery(tgd), instance)
