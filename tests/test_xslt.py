"""Tests for the XSLT rendering (emitter + interpreter).

The paper's Clio lineage renders transformations "in a number of
languages (XQuery, XSLT, SQL/XML, SQL)"; this suite checks the XSLT
rendering against the other two engines on every figure in its
supported subset (no grouping, no distribution — XSLT 1.0 limits), on
synthetic workloads and on randomized instances.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.xquery import emit_xquery, run_query
from repro.xslt import UnsupportedForXslt, apply_stylesheet, emit_xslt

SUPPORTED = ("fig3", "fig4", "fig5", "fig6", "fig9")
UNSUPPORTED = ("fig4-no-arc", "fig7", "fig8")


@pytest.fixture(scope="module")
def instance():
    return deptstore.source_instance()


class TestSupportedSubset:
    @pytest.mark.parametrize("fig", SUPPORTED)
    def test_three_engines_agree(self, fig, instance):
        tgd = compile_clip(deptstore.scenario(fig).make_mapping())
        via_executor = execute(tgd, instance)
        via_xquery = run_query(emit_xquery(tgd), instance)
        via_xslt = apply_stylesheet(emit_xslt(tgd), instance)
        assert via_xslt == via_executor == via_xquery

    @pytest.mark.parametrize("fig", SUPPORTED)
    def test_matches_paper_output(self, fig, instance):
        scenario = deptstore.scenario(fig)
        tgd = compile_clip(scenario.make_mapping())
        out = apply_stylesheet(emit_xslt(tgd), instance)
        expected = scenario.expected()
        assert out == expected if scenario.ordered else out.equals_canonically(expected)

    @pytest.mark.parametrize("fig", UNSUPPORTED)
    def test_unsupported_constructs_raise(self, fig):
        tgd = compile_clip(deptstore.scenario(fig).make_mapping())
        with pytest.raises(UnsupportedForXslt):
            emit_xslt(tgd)


class TestStylesheetText:
    def test_root_template_and_namespace(self):
        text = emit_xslt(compile_clip(deptstore.mapping_fig3())).serialize()
        assert 'xmlns:xsl="http://www.w3.org/1999/XSL/Transform"' in text
        assert '<xsl:template match="/">' in text

    def test_for_each_binds_tgd_variables(self):
        text = emit_xslt(compile_clip(deptstore.mapping_fig4())).serialize()
        assert '<xsl:for-each select="/source/dept">' in text
        assert '<xsl:variable name="d" select="."/>' in text
        assert '<xsl:for-each select="$d/regEmp">' in text

    def test_condition_becomes_xsl_if_with_escaping(self):
        text = emit_xslt(compile_clip(deptstore.mapping_fig3())).serialize()
        assert '<xsl:if test="$r/sal/text() &gt; 11000">' in text

    def test_attribute_guarded_by_existence(self):
        # count() > 0, not the bare path: XPath 1.0 coerces a node-set
        # used as a boolean through its *number* value in some engines,
        # so a bare-path guard drops values that stringify to 0.
        text = emit_xslt(compile_clip(deptstore.mapping_fig3())).serialize()
        assert '<xsl:if test="count($r/ename/text()) &gt; 0">' in text
        assert '<xsl:attribute name="name">' in text

    def test_aggregates_use_xpath1_functions(self):
        text = emit_xslt(compile_clip(deptstore.mapping_fig9())).serialize()
        assert 'select="count($d/Proj)"' in text
        assert "sum($d/regEmp/sal/text()) div count($d/regEmp/sal/text())" in text

    def test_join_condition_rendered(self):
        text = emit_xslt(compile_clip(deptstore.mapping_fig6())).serialize()
        assert '<xsl:if test="$p/@pid = $r/@pid">' in text


class TestSemanticDetails:
    def test_missing_optional_value_omits_attribute(self):
        from repro.core.mapping import ClipMapping
        from repro.xml.model import element
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import STRING

        source = schema(
            elem("s", elem("item", "[0..*]", elem("note", "[0..1]", text=STRING)))
        )
        target = schema(
            elem("t", elem("out", "[0..*]", attr("note", STRING, required=False)))
        )
        clip = ClipMapping(source, target)
        clip.build("item", "out", var="i")
        clip.value("item/note/value", "out/@note")
        instance = element(
            "s", element("item", element("note", text="x")), element("item")
        )
        out = apply_stylesheet(emit_xslt(compile_clip(clip)), instance)
        first, second = out.findall("out")
        assert first.attribute("note") == "x"
        assert not second.has_attribute("note")

    def test_empty_iteration_keeps_constant_tags(self):
        from repro.xml.model import element

        empty = element("source", element("dept", element("dname", text="E")))
        tgd = compile_clip(deptstore.mapping_fig3())
        out = apply_stylesheet(emit_xslt(tgd), empty)
        assert len(out.findall("department")) == 1

    def test_typed_values_preserved(self, instance):
        tgd = compile_clip(deptstore.mapping_fig9())
        out = apply_stylesheet(emit_xslt(tgd), instance)
        assert out.findall("department")[0].attribute("avg-sal") == 10875

    def test_avg_guard_on_empty(self):
        from repro.xml.model import element

        empty = element("source", element("dept", element("dname", text="E")))
        tgd = compile_clip(deptstore.mapping_fig9())
        out = apply_stylesheet(emit_xslt(tgd), empty)
        dept = out.findall("department")[0]
        assert dept.attribute("numEmps") == 0
        assert not dept.has_attribute("avg-sal")


_salaries = st.integers(min_value=0, max_value=40000)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_three_engines_agree_on_random_instances(seed):
    from repro.xsd.generate import GeneratorSpec, random_instance

    instance = random_instance(
        deptstore.source_schema(), GeneratorSpec(seed=seed, max_repeat=3)
    )
    for fig in SUPPORTED:
        tgd = compile_clip(deptstore.scenario(fig).make_mapping())
        via_executor = execute(tgd, instance)
        via_xslt = apply_stylesheet(emit_xslt(tgd), instance)
        assert via_xslt == via_executor, fig


class TestScalarFunctionRendering:
    def _clip_with(self, function, sources):
        from repro.core.mapping import ClipMapping
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import STRING

        source = deptstore.source_schema()
        target = schema(
            elem("t", elem("o", "[0..*]", attr("v", STRING, required=False)))
        )
        clip = ClipMapping(source, target)
        clip.build("dept", "o", var="d")
        clip.value(sources, "o/@v", function=function)
        return clip

    def test_concat(self, instance):
        from repro.core.functions import CONCAT

        clip = self._clip_with(CONCAT, ["dept/dname/value", "dept/dname/value"])
        tgd = compile_clip(clip)
        sheet = emit_xslt(tgd)
        assert "concat($d/dname/text(), $d/dname/text())" in sheet.serialize()
        out = apply_stylesheet(sheet, instance)
        assert out.findall("o")[0].attribute("v") == "ICTICT"

    def test_arithmetic(self):
        from repro.core.functions import ADD
        from repro.core.mapping import ClipMapping
        from repro.xml.model import element
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import INT

        source = schema(
            elem("s", elem("row", "[0..*]", attr("a", INT), attr("b", INT)))
        )
        target = schema(
            elem("t", elem("o", "[0..*]", attr("v", INT, required=False)))
        )
        clip = ClipMapping(source, target)
        clip.build("row", "o", var="r")
        clip.value(["row/@a", "row/@b"], "o/@v", function=ADD)
        tgd = compile_clip(clip)
        sheet = emit_xslt(tgd)
        assert "($r/@a + $r/@b)" in sheet.serialize()
        instance = element("s", element("row", a=2, b=3))
        out = apply_stylesheet(sheet, instance)
        assert out.findall("o")[0].attribute("v") == 5

    def test_min_max_unsupported(self, instance):
        from repro.core.mapping import ClipMapping
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import INT

        source = deptstore.source_schema()
        target = schema(
            elem("t", elem("o", "[0..*]", attr("v", INT, required=False)))
        )
        clip = ClipMapping(source, target)
        clip.build("dept", "o", var="d")
        clip.value_aggregate("min", "dept/regEmp/sal/value", "o/@v")
        with pytest.raises(UnsupportedForXslt):
            emit_xslt(compile_clip(clip))
