"""The seeded scenario corpus: determinism, validity, coverage.

The corpus is the substrate of the differential fuzz farm, so its own
contract is load-bearing: the same seed must regenerate each triple
byte for byte (fingerprints are the farm's replay anchor), every
generated mapping must pass the Section III validity rules, and the
round-robin must cover every requested axis.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.validity import check
from repro.generation import (
    AXES,
    CorpusError,
    generate_case,
    generate_corpus,
    resolve_axes,
)
from repro.runtime import PlanCache
from repro.xml.serialize import to_xml


class TestRoundRobin:
    def test_count_spreads_over_all_axes(self):
        count = 5 * len(AXES)
        cases = generate_corpus(seed=7, count=count)
        assert len(cases) == count
        per_axis = {axis: 0 for axis in AXES}
        for case in cases:
            per_axis[case.axis] += 1
        assert all(n == 5 for n in per_axis.values())

    def test_case_ids_are_stable_per_axis_indices(self):
        width = len(AXES)
        cases = generate_corpus(seed=7, count=2 * width + 1)
        assert cases[0].case_id == "deep-cpt-0000"
        assert cases[width].case_id == "deep-cpt-0001"
        assert cases[2 * width].case_id == "deep-cpt-0002"
        assert cases[width + 1].case_id == "aggregates-0001"

    def test_growing_count_extends_without_disturbing(self):
        """Case i is the same triple whether the corpus holds 12 or 60
        cases — growing a fuzz window never invalidates old case ids."""
        small = generate_corpus(seed=7, count=12)
        large = generate_corpus(seed=7, count=60)
        for a, b in zip(small, large):
            assert a.case_id == b.case_id
            assert a.fingerprint() == b.fingerprint()

    def test_axes_filter_restricts_and_preserves_order(self):
        cases = generate_corpus(
            seed=7, count=8, axes=["fanout-join", "deep-cpt"]
        )
        # resolve_axes preserves AXES order: deep-cpt before fanout-join.
        assert [c.axis for c in cases[:2]] == ["deep-cpt", "fanout-join"]
        assert {c.axis for c in cases} == {"deep-cpt", "fanout-join"}

    def test_unknown_axis_rejected(self):
        with pytest.raises(CorpusError, match="unknown corpus axes"):
            generate_corpus(seed=7, count=5, axes=["nope"])
        with pytest.raises(CorpusError, match="at least one"):
            resolve_axes([])
        with pytest.raises(CorpusError, match="unknown corpus axis"):
            generate_case(7, "nope", 0)

    def test_negative_count_rejected(self):
        with pytest.raises(CorpusError, match="count must be >= 0"):
            generate_corpus(seed=7, count=-1)


class TestDeterminism:
    def test_same_seed_regenerates_byte_identical_triples(self):
        first = generate_corpus(seed=7, count=18)
        second = generate_corpus(seed=7, count=18)
        for a, b in zip(first, second):
            assert a.fingerprint() == b.fingerprint()
            assert to_xml(a.instance) == to_xml(b.instance)
            assert a.params == b.params

    def test_different_seeds_differ(self):
        first = generate_corpus(seed=7, count=12)
        second = generate_corpus(seed=8, count=12)
        changed = sum(
            1
            for a, b in zip(first, second)
            if a.fingerprint() != b.fingerprint()
        )
        # The shapes are drawn from each case's rng stream: virtually
        # every case changes with the seed; demand a clear majority.
        assert changed >= 9

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        axis=st.sampled_from(AXES),
        index=st.integers(min_value=0, max_value=40),
    )
    def test_any_case_is_deterministic_and_valid(self, seed, axis, index):
        """Hypothesis property: for arbitrary (seed, axis, index), the
        triple regenerates byte-identically and its mapping passes the
        Section III validity rules."""
        a = generate_case(seed, axis, index)
        b = generate_case(seed, axis, index)
        assert a.fingerprint() == b.fingerprint()
        assert check(a.mapping).is_valid


class TestExecutability:
    def test_every_case_compiles_and_runs_on_the_reference_engine(self):
        cache = PlanCache(maxsize=256)
        for case in generate_corpus(seed=11, count=18):
            plan = cache.get_or_compile(case.mapping, "tgd")
            out = plan(case.instance)
            assert out.tag == case.mapping.target.root.name

    def test_instances_conform_to_the_source_schema(self):
        """Structurally valid always; keyref checking is off because
        dangling ``@pid`` references are a deliberate stressor (a join
        must silently drop them, and the farm checks every engine does
        so identically)."""
        from repro.xsd.validate import validate

        for case in generate_corpus(seed=7, count=12):
            violations = validate(
                case.instance, case.mapping.source, check_constraints=False
            )
            assert violations == []


class TestPackageSurface:
    def test_public_entry_points_exported_from_generation(self):
        """The CLI and tests import from ``repro.generation``, never
        from the submodules."""
        import repro.generation as generation

        for name in (
            "AXES",
            "CorpusCase",
            "generate_case",
            "generate_corpus",
            "resolve_axes",
            "measure_flexibility",
            "enumerate_candidates",
            "compute_tableaux",
            "primary_tableaux",
        ):
            assert hasattr(generation, name), name
            assert name in generation.__all__
