"""Tests for the top-level public API (Transformer and re-exports)."""

from __future__ import annotations

import pytest

import repro
from repro import Transformer
from repro.errors import InvalidMappingError
from repro.scenarios import deptstore


class TestTransformer:
    def test_compiles_once_and_transforms(self):
        transformer = Transformer(deptstore.mapping_fig5())
        out = transformer(deptstore.source_instance())
        assert out == deptstore.expected_fig5()

    def test_exposes_validity_report_and_tgd(self):
        transformer = Transformer(deptstore.mapping_fig3())
        assert transformer.report.is_valid
        assert "∀ d ∈ source.dept" in str(transformer.tgd)

    def test_xquery_text_lazy(self):
        transformer = Transformer(deptstore.mapping_fig9())
        assert transformer._query is None
        text = transformer.xquery_text
        assert "count($d/Proj)" in text
        assert transformer._query is not None

    def test_xquery_engine(self):
        direct = Transformer(deptstore.mapping_fig7())
        xquery = Transformer(deptstore.mapping_fig7(), engine="xquery")
        instance = deptstore.source_instance()
        assert direct(instance) == xquery(instance)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Transformer(deptstore.mapping_fig3(), engine="sql")

    def test_invalid_mapping_rejected_by_default(self, source_schema):
        from repro.core.mapping import ClipMapping
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import STRING

        target = schema(elem("t", elem("only", attr("n", STRING, required=False))))
        clip = ClipMapping(source_schema, target)
        clip.build("dept", "only", var="d")
        with pytest.raises(InvalidMappingError):
            Transformer(clip)
        # But the report is still inspectable with require_valid=False:
        relaxed = Transformer(clip, require_valid=False)
        assert not relaxed.report.is_valid

    def test_reusable_across_instances(self):
        from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance

        transformer = Transformer(deptstore.mapping_fig9())
        small = transformer(make_deptstore_instance(DeptstoreSpec(departments=2)))
        large = transformer(make_deptstore_instance(DeptstoreSpec(departments=7)))
        assert len(small.findall("department")) == 2
        assert len(large.findall("department")) == 7


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_key_names_exported(self):
        for name in (
            "Transformer",
            "ClipMapping",
            "NestedTgd",
            "compile_clip",
            "check",
            "execute",
            "emit_xquery",
            "run_query",
            "serialize_xquery",
        ):
            assert hasattr(repro, name), name

    def test_subpackages_reachable(self):
        assert repro.core.parse_tgd
        assert repro.generation.generate_clip
        assert repro.xquery.parse_xquery
        assert repro.scenarios.FIGURES


class TestExplain:
    def test_explain_matches_call(self):
        transformer = Transformer(deptstore.mapping_fig4())
        instance = deptstore.source_instance()
        report = transformer.explain(instance)
        assert report.result == transformer(instance)
        assert report.total_iterations == 5  # 2 depts + 3 surviving emps

    def test_explain_render(self):
        transformer = Transformer(deptstore.mapping_fig6())
        text = transformer.explain(deptstore.source_instance()).render()
        assert "filtered=7" in text  # 14 candidate pairs − 7 join survivors
