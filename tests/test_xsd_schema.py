"""Unit tests for schema trees, cardinalities and node references."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.xsd.dsl import attr, elem, keyref, schema
from repro.xsd.schema import (
    MANY,
    ONE,
    ONE_OR_MORE,
    OPTIONAL,
    Cardinality,
    ElementDecl,
    ValueNode,
    parse_cardinality,
)
from repro.xsd.types import INT, STRING


class TestCardinality:
    def test_labels(self):
        assert str(Cardinality(0, None)) == "[0..*]"
        assert str(Cardinality(1, 1)) == "[1..1]"

    def test_parse_labels(self):
        assert parse_cardinality("[0..*]") == MANY
        assert parse_cardinality("1..*") == ONE_OR_MORE
        assert parse_cardinality("[0..1]") == OPTIONAL

    def test_parse_rejects_malformed(self):
        with pytest.raises(SchemaError):
            parse_cardinality("[zero..one]")
        with pytest.raises(SchemaError):
            parse_cardinality("3")

    def test_optionality_and_multiplicity(self):
        assert MANY.is_optional and MANY.is_repeating
        assert OPTIONAL.is_optional and not OPTIONAL.is_repeating
        assert not ONE.is_optional and not ONE.is_repeating
        assert Cardinality(1, 5).is_repeating

    def test_admits(self):
        assert MANY.admits(0) and MANY.admits(100)
        assert not ONE.admits(0) and not ONE.admits(2)
        assert Cardinality(2, 3).admits(2) and not Cardinality(2, 3).admits(1)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(SchemaError):
            Cardinality(2, 1)
        with pytest.raises(SchemaError):
            Cardinality(-1, 1)


class TestElementDecl:
    def test_paths(self, source_schema):
        pname = source_schema.element("dept/Proj/pname")
        assert pname.path_string() == "source/dept/Proj/pname"
        assert [e.name for e in pname.path()] == ["source", "dept", "Proj", "pname"]
        assert pname.depth() == 3

    def test_ancestry(self, source_schema):
        dept = source_schema.element("dept")
        pname = source_schema.element("dept/Proj/pname")
        assert dept.is_ancestor_of(pname)
        assert not pname.is_ancestor_of(dept)
        assert not dept.is_ancestor_of(dept)

    def test_duplicate_children_rejected(self):
        with pytest.raises(SchemaError):
            elem("p", elem("x"), elem("x"))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            elem("p", attr("a", STRING), attr("a", INT))

    def test_text_and_children_conflict(self):
        with pytest.raises(SchemaError):
            ElementDecl("p", children=[ElementDecl("c")], text_type=STRING)

    def test_reattachment_rejected(self):
        child = elem("c")
        elem("p1", child)
        with pytest.raises(SchemaError):
            elem("p2", child)


class TestSchemaLookup:
    def test_element_lookup_with_and_without_root(self, source_schema):
        direct = source_schema.element("dept/regEmp")
        with_root = source_schema.element("source/dept/regEmp")
        assert direct is with_root

    def test_unknown_path_raises(self, source_schema):
        with pytest.raises(SchemaError):
            source_schema.element("dept/nothere")

    def test_value_lookup_attribute(self, source_schema):
        node = source_schema.value("dept/Proj/@pid")
        assert node.attribute == "pid"
        assert node.type is INT
        assert node.path_string() == "source/dept/Proj/@pid"

    def test_value_lookup_text_via_value_keyword(self, source_schema):
        node = source_schema.value("dept/regEmp/sal/value")
        assert node.is_text
        assert node.type is INT

    def test_value_lookup_text_via_function(self, source_schema):
        assert source_schema.value("dept/dname/text()").is_text

    def test_value_lookup_bare_leaf_element(self, source_schema):
        node = source_schema.value("dept/regEmp/ename")
        assert node.element.name == "ename" and node.is_text

    def test_node_dispatches_elements_and_values(self, source_schema):
        from repro.xsd.schema import ElementDecl

        assert isinstance(source_schema.node("dept/Proj"), ElementDecl)
        assert isinstance(source_schema.node("dept/Proj/@pid"), ValueNode)

    def test_value_node_requires_existing_attribute(self, source_schema):
        with pytest.raises(SchemaError):
            source_schema.value("dept/Proj/@nope")

    def test_value_node_requires_text_type(self, source_schema):
        with pytest.raises(SchemaError):
            ValueNode(source_schema.element("dept"), None)

    def test_repeating_elements(self, source_schema):
        names = [e.name for e in source_schema.repeating_elements()]
        assert names == ["dept", "Proj", "regEmp"]

    def test_repeating_path(self, source_schema):
        node = source_schema.value("dept/regEmp/sal/value")
        assert [e.name for e in source_schema.repeating_path(node)] == ["dept", "regEmp"]

    def test_owns(self, source_schema):
        other = schema(elem("other", elem("x", "[0..*]")))
        assert source_schema.owns(source_schema.element("dept"))
        assert not source_schema.owns(other.element("x"))


class TestKeyrefDsl:
    def test_keyref_resolves_against_schema(self, source_schema):
        (constraint,) = source_schema.constraints
        assert constraint.referring.path_string() == "source/dept/regEmp/@pid"
        assert constraint.referred.path_string() == "source/dept/Proj/@pid"

    def test_join_suggestion(self, source_schema):
        from repro.xsd.constraints import suggest_join

        proj = source_schema.element("dept/Proj")
        emp = source_schema.element("dept/regEmp")
        suggestion = suggest_join(source_schema, proj, emp)
        assert suggestion is not None
        left, right = suggestion
        assert left.element is proj and right.element is emp

    def test_join_suggestion_none_without_constraint(self, source_schema):
        dname = source_schema.element("dept/dname")
        pname = source_schema.element("dept/Proj/pname")
        from repro.xsd.constraints import suggest_join

        assert suggest_join(source_schema, dname, pname) is None

    def test_join_suggestion_matches_ancestor_arcs(self, source_schema):
        """The keyref's value nodes may sit below the arc elements
        (grant/recipient vs the grant arc): ancestors match too."""
        from repro.xsd.constraints import suggest_join

        dept = source_schema.element("dept")
        proj = source_schema.element("dept/Proj")
        suggestion = suggest_join(source_schema, dept, proj)
        assert suggestion is not None  # dept covers regEmp/@pid
