"""Unit tests for the tracing core: :mod:`repro.runtime.trace` and the
:mod:`repro.runtime.traceview` renderers.

The integration-level guarantees (byte-determinism across worker
counts, golden span trees, fault accounting) live in
``test_trace_properties.py`` and ``test_trace_golden.py``; this module
pins the building blocks those suites rest on — id derivation, sibling
deduplication, nesting discipline, the canonical form's exclusions,
payload round-trips across the pickle boundary, and the falsy
:class:`~repro.runtime.trace.NullTracer` contract that makes disabled
tracing free.
"""

from __future__ import annotations

import json

import pytest

from repro.runtime.trace import (
    NONCANONICAL_SUFFIX,
    PARSEABLE_TRACE_VERSIONS,
    SPAN_ID_LEN,
    TRACE_FORMAT,
    TRACE_VERSION,
    NullTracer,
    Span,
    SpanTracer,
    Trace,
    combine_seeds,
    event_payload,
    shift_payload,
    span_from_payload,
    span_id,
)
from repro.runtime.traceview import render_tree, to_chrome_trace


class TestSpanId:
    def test_deterministic(self):
        assert span_id("seed", "a/b") == span_id("seed", "a/b")

    def test_depends_on_seed_and_path(self):
        assert span_id("seed", "a/b") != span_id("other", "a/b")
        assert span_id("seed", "a/b") != span_id("seed", "a/c")

    def test_length_and_alphabet(self):
        sid = span_id("s", "p")
        assert len(sid) == SPAN_ID_LEN
        assert set(sid) <= set("0123456789abcdef")

    def test_combine_seeds_order_sensitive(self):
        assert combine_seeds(["a", "b"]) != combine_seeds(["b", "a"])
        assert combine_seeds(["a", "b"]) == combine_seeds(iter(["a", "b"]))


class TestSpanTracer:
    def test_nesting_and_truthiness(self):
        tracer = SpanTracer(seed="s")
        assert tracer
        assert not tracer.active
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        assert tracer.active
        tracer.end(inner)
        tracer.end(outer, status="ok")
        assert outer.attrs == {"status": "ok"}
        assert not tracer.active
        assert tracer.roots == [outer]
        assert outer.children == [inner]

    def test_end_without_open_span_raises(self):
        with pytest.raises(RuntimeError, match="no open span"):
            SpanTracer().end()

    def test_unbalanced_end_raises(self):
        tracer = SpanTracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        with pytest.raises(RuntimeError, match="unbalanced"):
            tracer.end(outer)

    def test_to_trace_with_open_span_raises(self):
        tracer = SpanTracer()
        tracer.begin("dangling")
        with pytest.raises(RuntimeError, match="dangling"):
            tracer.to_trace()

    def test_span_contextmanager_closes_on_error(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        assert not tracer.active
        assert tracer.roots[0].name == "work"

    def test_events_and_errors_are_points(self):
        tracer = SpanTracer()
        with tracer.span("run"):
            ev = tracer.event("tick", n=1)
            err = tracer.error("bad", reason="x")
        assert ev.kind == "event" and ev.t0 == ev.t1
        assert err.kind == "error"
        assert [c.name for c in tracer.roots[0].children] == ["tick", "bad"]

    def test_sibling_name_dedup(self):
        tracer = SpanTracer(seed="s")
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("doc"):
                    pass
        spans = tracer.to_trace().spans
        names = [c["name"] for c in spans[0]["children"]]
        assert names == ["doc", "doc#2", "doc#3"]
        paths = [c["path"] for c in spans[0]["children"]]
        assert paths == ["root/doc", "root/doc#2", "root/doc#3"]

    def test_ids_assigned_from_seed_and_path(self):
        tracer = SpanTracer(seed="s")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        spans = tracer.to_trace().spans
        assert spans[0]["id"] == span_id("s", "a")
        assert spans[0]["parent"] is None
        child = spans[0]["children"][0]
        assert child["id"] == span_id("s", "a/b")
        assert child["parent"] == spans[0]["id"]


class TestNullTracer:
    def test_falsy_and_inert(self):
        null = NullTracer()
        assert not null
        assert null.begin("x") is None
        assert null.end() is None
        with null.span("y") as opened:
            assert opened is None
        assert null.event("e") is None
        assert null.error("e") is None
        assert null.attach({"name": "n"}) is None
        assert null.to_trace().spans == []

    def test_guard_skips_instrumentation(self):
        # The exact pattern every instrumented site uses.
        ran = False
        trace = NullTracer()
        if trace:
            ran = True
        assert not ran


class TestPayloads:
    def test_round_trip(self):
        span = Span("attempt", "error", t0=1.0, t1=2.0, attrs={"k": 1})
        span.children.append(Span("inner", t0=1.2, t1=1.8))
        rebuilt = span_from_payload(span.to_payload())
        assert rebuilt.to_payload() == span.to_payload()

    def test_payload_survives_json(self):
        # Pool records travel pickled; payloads must also be plain data.
        span = Span("doc", attrs={"n": 2})
        assert json.loads(json.dumps(span.to_payload())) == span.to_payload()

    def test_shift_payload_preserves_durations(self):
        span = Span("a", t0=10.0, t1=12.0)
        span.children.append(Span("b", t0=10.5, t1=11.5))
        payload = shift_payload(span.to_payload(), 100.0)
        assert payload["t0"] == 110.0 and payload["t1"] == 112.0
        child = payload["children"][0]
        assert child["t1"] - child["t0"] == pytest.approx(1.0)

    def test_event_payload_shape(self):
        payload = event_payload("dead-letter", error="E")
        assert payload["kind"] == "event"
        assert payload["t0"] == payload["t1"]
        assert payload["attrs"] == {"error": "E"}

    def test_attach_grafts_subtree(self):
        tracer = SpanTracer(seed="s")
        with tracer.span("batch"):
            tracer.attach(Span("doc[0]").to_payload())
        spans = tracer.to_trace().spans
        assert spans[0]["children"][0]["name"] == "doc[0]"


class TestCanonicalForm:
    def _trace(self):
        tracer = SpanTracer(seed="s", engine="tgd", meta={"workers": 4})
        with tracer.span("run", execute_seconds=0.5, status="ok"):
            pass
        return tracer.to_trace()

    def test_strips_timestamps_seconds_attrs_and_meta(self):
        doc = self._trace().canonical_dict()
        span = doc["spans"][0]
        assert "t0" not in span and "t1" not in span
        assert "meta" not in doc
        assert NONCANONICAL_SUFFIX == "_seconds"
        assert span["attrs"] == {"status": "ok"}

    def test_canonical_json_is_byte_stable(self):
        trace = self._trace()
        assert trace.canonical_json() == trace.canonical_json()
        # Fixed separators, sorted keys: no whitespace after commas.
        assert ", " not in trace.canonical_json()

    def test_full_dict_keeps_timestamps_and_meta(self):
        doc = self._trace().to_dict()
        assert doc["format"] == TRACE_FORMAT
        assert doc["version"] == TRACE_VERSION
        assert doc["meta"] == {"workers": 4}
        span = doc["spans"][0]
        assert span["t1"] >= span["t0"]
        assert span["attrs"]["execute_seconds"] == 0.5


class TestTraceDocument:
    def test_json_round_trip(self):
        tracer = SpanTracer(seed="s", engine="xquery")
        with tracer.span("eval"):
            tracer.event("flwor[0]", items=3)
        trace = tracer.to_trace()
        back = Trace.from_json(trace.to_json())
        assert back.to_dict() == trace.to_dict()
        assert back.canonical_json() == trace.canonical_json()

    def test_from_dict_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="not a clip-trace"):
            Trace.from_dict({"format": "clip-batch-metrics", "version": 1})

    def test_from_dict_rejects_unknown_version(self):
        bad = TRACE_VERSION + 1
        assert bad not in PARSEABLE_TRACE_VERSIONS
        with pytest.raises(ValueError, match="unsupported"):
            Trace.from_dict({"format": TRACE_FORMAT, "version": bad})

    def test_iter_spans_depth_first(self):
        tracer = SpanTracer(seed="s")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        names = [s["name"] for s in tracer.to_trace().iter_spans()]
        assert names == ["a", "b", "c"]

    def test_find(self):
        tracer = SpanTracer(seed="s")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        trace = tracer.to_trace()
        assert trace.find("b")["path"] == "a/b"
        assert trace.find("zzz") is None


class TestViews:
    def _trace(self):
        tracer = SpanTracer(seed="s", engine="tgd")
        with tracer.span("execute", status="ok", wall_seconds=0.25):
            tracer.event("level[0]", iterations=2)
            tracer.error("oops", reason="r")
        return tracer.to_trace()

    def test_chrome_conversion(self):
        doc = to_chrome_trace(self._trace())
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["execute", "level[0]", "oops"]
        assert all(e["ph"] == "X" for e in events)
        # Timestamps re-based to zero, microseconds.
        assert min(e["ts"] for e in events) == 0
        assert doc["otherData"]["engine"] == "tgd"
        root = events[0]
        assert root["args"]["path"] == "execute"
        assert root["args"]["span_id"] == span_id("s", "execute")

    def test_chrome_accepts_plain_dict(self):
        trace = self._trace()
        assert to_chrome_trace(trace.to_dict()) == to_chrome_trace(trace)

    def test_render_tree(self):
        text = render_tree(self._trace())
        lines = text.splitlines()
        assert lines[0].startswith("clip-trace")
        assert lines[1].lstrip("— ").startswith("execute")
        assert "status=ok" in lines[1]
        # Non-canonical attrs stay out of the rendering.
        assert "wall_seconds" not in text
        assert any("level[0]" in line for line in lines)
        assert any("✗" in line and "oops" in line for line in lines)

    def test_render_tree_without_attrs(self):
        text = render_tree(self._trace(), attrs=False)
        assert "status=ok" not in text
