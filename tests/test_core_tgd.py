"""Unit tests for the nested-tgd AST and its paper-notation printer.

The paper prints the tgd of every Section IV example; these tests pin
our rendering to that notation (modulo documented variable naming).
"""

from __future__ import annotations

from repro.core.compile import compile_clip
from repro.core.tgd import (
    Assignment,
    Constant,
    GroupByApp,
    Membership,
    NestedTgd,
    Proj,
    SchemaRoot,
    SourceGenerator,
    TargetGenerator,
    TgdComparison,
    TgdMapping,
    Var,
    expr_labels,
    expr_root,
    proj_path,
)
from repro.scenarios import deptstore


class TestExpressions:
    def test_proj_path_folds_labels(self):
        expr = proj_path(Var("r"), ["sal", "value"])
        assert str(expr) == "r.sal.value"

    def test_expr_root_and_labels(self):
        expr = proj_path(SchemaRoot("source"), ["dept", "regEmp"])
        assert expr_root(expr) == SchemaRoot("source")
        assert expr_labels(expr) == ["dept", "regEmp"]

    def test_primed_variables_render_with_unicode_prime(self):
        assert str(Var("d'")) == "d′"

    def test_constants_render_by_type(self):
        assert str(Constant("x")) == "'x'"
        assert str(Constant(11000)) == "11000"
        assert str(Constant(True)) == "true"

    def test_membership_renders_with_element_of(self):
        cond = Membership(Var("p2"), proj_path(Var("d2"), ["Proj"]))
        assert str(cond) == "p2 ∈ d2.Proj"

    def test_groupby_renders_bottom_for_unrestricted_context(self):
        app = GroupByApp(None, (proj_path(Var("p"), ["pname", "value"]),))
        assert str(app) == "group-by(⊥, [p.pname.value])"

    def test_groupby_renders_context_variables(self):
        app = GroupByApp(("d'",), (proj_path(Var("p"), ["pname", "value"]),))
        assert str(app).startswith("group-by(d′,")


class TestComparisonSemantics:
    def test_holds(self):
        cmp_ = TgdComparison(Var("x"), ">", Constant(1))
        assert cmp_.holds(2, 1)
        assert not cmp_.holds(1, 1)
        for op, ok in [("=", (1, 1)), ("!=", (1, 2)), ("<", (1, 2)), ("<=", (1, 1)), (">=", (2, 1))]:
            assert TgdComparison(Var("x"), op, Constant(0)).holds(*ok)


class TestPaperNotation:
    def test_fig3_tgd_matches_paper(self):
        tgd = compile_clip(deptstore.mapping_fig3())
        assert str(tgd) == (
            "∀ d ∈ source.dept, r ∈ d.regEmp | r.sal.value > 11000 →\n"
            "  ∃ d′ ∈ target.department, r′ ∈ d′.employee |\n"
            "    r′.@name = r.ename.value"
        )

    def test_fig4_tgd_nests_submapping_in_brackets(self):
        text = str(compile_clip(deptstore.mapping_fig4()))
        assert text.startswith("∀ d ∈ source.dept →")
        assert "[∀ r ∈ d.regEmp | r.sal.value > 11000 →" in text
        assert text.rstrip().endswith("r′.@name = r.ename.value]")

    def test_fig5_tgd_has_two_submappings(self):
        text = str(compile_clip(deptstore.mapping_fig5()))
        assert text.count("[∀") == 2
        assert "∃ p′ ∈ d′.project" in text
        assert "∃ r′ ∈ d′.employee" in text

    def test_fig6_tgd_outer_level_builds_nothing(self):
        text = str(compile_clip(deptstore.mapping_fig6()))
        first_line, rest = text.split("\n", 1)
        assert first_line == "∀ d ∈ source.dept →"
        assert "∃ p′ ∈ target.project-emp" in rest
        assert "p.@pid = r.@pid" in rest

    def test_fig7_tgd_declares_group_by_function(self):
        text = str(compile_clip(deptstore.mapping_fig7()))
        assert text.startswith("∃ group-by(")
        assert "p′ = group-by(⊥, [p.pname.value])" in text
        assert "p2 ∈ p" in text
        assert text.endswith(")")

    def test_fig8_tgd_has_membership_condition(self):
        text = str(compile_clip(deptstore.mapping_fig8()))
        assert "∈ d2.Proj" in text  # the inversion membership

    def test_fig9_tgd_matches_paper(self):
        tgd = compile_clip(deptstore.mapping_fig9())
        assert str(tgd) == (
            "∃ count, avg(\n"
            "  ∀ d ∈ source.dept →\n"
            "    ∃ d′ ∈ target.department |\n"
            "      d′.@name = d.dname.value,\n"
            "      d′.@numProj = count(d.Proj),\n"
            "      d′.@numEmps = count(d.regEmp),\n"
            "      d′.@avg-sal = avg(d.regEmp.sal.value))"
        )


class TestWalk:
    def test_walk_visits_all_levels(self):
        tgd = compile_clip(deptstore.mapping_fig5())
        assert len(list(tgd.walk())) == 3

    def test_built_vars(self):
        tgd = compile_clip(deptstore.mapping_fig3())
        (mapping,) = tgd.roots
        assert mapping.built_vars() == ["r'"]
        # The department generator is printed but unquantified.
        unquantified = [g for g in mapping.target_gens if not g.quantified]
        assert [g.var for g in unquantified] == ["d'"]

    def test_empty_generator_level_renders_as_top(self):
        mapping = TgdMapping((), (), (TargetGenerator("x'", Proj(SchemaRoot("t"), "a"), quantified=False),), ())
        text = str(NestedTgd((mapping,), source_root="s", target_root="t"))
        assert text.startswith("∀ ⊤")
