"""The codegen execution backend: byte-identity, determinism, rebuild.

The contracts of :mod:`repro.executor.codegen`, as tests:

* **byte-identity** — the specialized generated-Python program
  serializes byte-identically to the interpreted optimized engine (and
  hence, transitively, to the naive reference path) over the seeded
  corpus, all six axes included;
* **counter parity** — the generated code's flushed counters equal the
  interpreter's, so explain reports and trace plan subtrees agree;
* **deterministic emission** — identical plans emit byte-identical
  source, which is what lets pool workers rebuild closures from a
  cached source string and lets the plan fingerprint stay structural;
* **wiring** — exec mode resolution (flag > env > default), fingerprint
  separation, worker-pool rebuild-from-source, and the explain
  ``codegen`` section.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Transformer
from repro.core.compile import compile_clip
from repro.errors import ExecutionError
from repro.executor import explain_plan, prepare
from repro.executor.codegen import (
    EXEC_MODE_ENV,
    EXEC_MODES,
    build_program,
    generate_source,
    resolve_exec_mode,
)
from repro.executor.planner import plan_tgd
from repro.generation import AXES
from repro.generation.corpus import generate_corpus
from repro.runtime import BatchRunner, PlanCache
from repro.runtime.plan import fingerprint, resolve_effective_exec_mode, trace_seed
from repro.scenarios import deptstore
from repro.xml.serialize import to_xml

#: A fixed corpus slice shared by the module: six axes, many shapes.
_CASES = list(generate_corpus(seed=20260808, count=36))


def test_corpus_slice_covers_every_axis():
    assert {case.axis for case in _CASES} == set(AXES)


# -- byte-identity -----------------------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(index=st.integers(min_value=0, max_value=len(_CASES) - 1))
def test_codegen_matches_interp_byte_for_byte(index):
    """Over corpus cases from every axis, the generated program and the
    interpreted optimized engine serialize identical target bytes."""
    case = _CASES[index]
    tgd = compile_clip(case.mapping)
    interp = prepare(tgd, optimize=True, exec_mode="interp")
    codegen = prepare(tgd, optimize=True, exec_mode="codegen")
    assert codegen.program is not None
    assert to_xml(codegen.run(case.instance)) == to_xml(interp.run(case.instance))


@pytest.mark.parametrize(
    "figure",
    ["fig3", "fig4", "fig6", "fig7"],
)
def test_codegen_counter_parity_on_figures(figure):
    """The generated code flushes exactly the interpreter's counters —
    the invariant that keeps explain output and trace plan subtrees
    mode-independent."""
    factory = {
        "fig3": deptstore.mapping_fig3,
        "fig4": deptstore.mapping_fig4,
        "fig6": deptstore.mapping_fig6,
        "fig7": deptstore.mapping_fig7,
    }[figure]
    tgd = compile_clip(factory())
    instance = deptstore.source_instance()
    interp = explain_plan(tgd, instance, optimize=True, exec_mode="interp")
    codegen = explain_plan(tgd, instance, optimize=True, exec_mode="codegen")
    assert codegen.counters == interp.counters
    assert to_xml(codegen.result) == to_xml(interp.result)


# -- deterministic emission --------------------------------------------------


def test_emission_is_deterministic_for_one_plan():
    planned = plan_tgd(compile_clip(deptstore.mapping_fig7()))
    assert generate_source(planned) == generate_source(planned)


def test_emission_is_deterministic_across_compiles():
    """Two independent compilations of the same mapping (distinct AST
    objects throughout) emit byte-identical source — names come from
    emission order, never from ``id()``."""
    first = generate_source(plan_tgd(compile_clip(deptstore.mapping_fig7())))
    second = generate_source(plan_tgd(compile_clip(deptstore.mapping_fig7())))
    assert first == second
    assert first.startswith("# clip-codegen v1")


def test_distinct_plans_emit_distinct_source():
    fig6 = generate_source(plan_tgd(compile_clip(deptstore.mapping_fig6())))
    fig7 = generate_source(plan_tgd(compile_clip(deptstore.mapping_fig7())))
    assert fig6 != fig7


def test_program_describe_shape():
    program = build_program(plan_tgd(compile_clip(deptstore.mapping_fig6())))
    description = program.describe()
    assert set(description) == {"source_hash", "line_count", "compile_seconds"}
    assert len(description["source_hash"]) == 64
    assert description["line_count"] == len(program.source.splitlines())


# -- rebuild from source (the pool-worker path) ------------------------------


def test_build_program_accepts_matching_cached_source():
    planned = plan_tgd(compile_clip(deptstore.mapping_fig6()))
    original = build_program(planned)
    rebuilt = build_program(planned, source=original.source)
    assert rebuilt.source == original.source
    assert rebuilt.source_hash == original.source_hash
    tgd = compile_clip(deptstore.mapping_fig6())
    instance = deptstore.source_instance()
    via_rebuilt = prepare(tgd, optimize=True, exec_mode="codegen")
    assert to_xml(via_rebuilt.run(instance)) == to_xml(
        prepare(tgd, optimize=True, exec_mode="interp").run(instance)
    )


def test_build_program_rejects_foreign_source():
    planned = plan_tgd(compile_clip(deptstore.mapping_fig6()))
    foreign = build_program(plan_tgd(compile_clip(deptstore.mapping_fig7())))
    with pytest.raises(ExecutionError, match="codegen source mismatch"):
        build_program(planned, source=foreign.source)


@pytest.mark.parametrize("workers", [1, 2])
def test_pool_workers_rebuild_from_shipped_source(workers):
    """`workers>1` ships the generated source (strings pickle, code
    objects don't); the pool's outputs match the inline interpreter's
    document-for-document."""
    mapping = deptstore.mapping_fig7()
    docs = [deptstore.source_instance() for _ in range(4)]
    codegen = BatchRunner(
        mapping, workers=workers, exec_mode="codegen", cache=PlanCache()
    ).run(docs)
    interp = BatchRunner(
        mapping, workers=1, exec_mode="interp", cache=PlanCache()
    ).run(docs)
    assert [to_xml(r) for r in codegen] == [to_xml(r) for r in interp]
    assert codegen.metrics.plan["exec_mode"] == "codegen"
    assert set(codegen.metrics.plan["codegen"]) == {
        "source_hash", "line_count", "compile_seconds"
    }
    assert interp.metrics.plan["exec_mode"] == "interp"
    assert "codegen" not in interp.metrics.plan


# -- mode resolution and fingerprints ----------------------------------------


def test_resolve_exec_mode_flag_env_default(monkeypatch):
    monkeypatch.delenv(EXEC_MODE_ENV, raising=False)
    assert resolve_exec_mode(None) == "interp"
    assert resolve_exec_mode("codegen") == "codegen"
    monkeypatch.setenv(EXEC_MODE_ENV, "codegen")
    assert resolve_exec_mode(None) == "codegen"
    assert resolve_exec_mode("interp") == "interp"  # explicit wins
    with pytest.raises(ValueError, match="unknown exec mode"):
        resolve_exec_mode("jit")
    assert EXEC_MODES == ("interp", "codegen")


def test_effective_mode_requires_optimized_tgd():
    assert resolve_effective_exec_mode("tgd", True, "codegen") == "codegen"
    assert resolve_effective_exec_mode("tgd", False, "codegen") == "interp"
    assert resolve_effective_exec_mode("xquery", True, "codegen") == "interp"
    assert resolve_effective_exec_mode("xslt", True, "codegen") == "interp"


def test_fingerprint_separates_exec_modes():
    mapping = deptstore.mapping_fig6()
    interp = fingerprint(mapping, "tgd", exec_mode="interp")
    codegen = fingerprint(mapping, "tgd", exec_mode="codegen")
    assert interp != codegen
    # Codegen only exists on the optimized tgd path: elsewhere the
    # request resolves to interp and the fingerprint is unchanged.
    assert fingerprint(
        mapping, "tgd", optimize=False, exec_mode="codegen"
    ) == fingerprint(mapping, "tgd", optimize=False)
    assert fingerprint(
        mapping, "xquery", exec_mode="codegen"
    ) == fingerprint(mapping, "xquery")


def test_trace_seed_is_exec_mode_independent(monkeypatch):
    mapping = deptstore.mapping_fig6()
    seed = trace_seed(mapping, "tgd")
    monkeypatch.setenv(EXEC_MODE_ENV, "codegen")
    assert trace_seed(mapping, "tgd") == seed
    assert seed == fingerprint(mapping, "tgd", optimize=True, exec_mode="interp")


def test_cache_keeps_modes_apart():
    cache = PlanCache()
    mapping = deptstore.mapping_fig6()
    interp = cache.get_or_compile(mapping, "tgd", exec_mode="interp")
    codegen = cache.get_or_compile(mapping, "tgd", exec_mode="codegen")
    assert interp is not codegen
    assert interp.fingerprint != codegen.fingerprint
    assert codegen.exec_mode == "codegen" and interp.exec_mode == "interp"
    assert cache.get_or_compile(mapping, "tgd", exec_mode="codegen") is codegen


# -- explain -----------------------------------------------------------------


def test_explain_plan_gains_codegen_section():
    transformer = Transformer(deptstore.mapping_fig6(), exec_mode="codegen")
    report = transformer.explain_plan(deptstore.source_instance())
    doc = report.to_dict()
    assert doc["exec_mode"] == "codegen"
    assert set(doc["codegen"]) == {"source_hash", "line_count", "compile_seconds"}
    rendered = report.render()
    assert "exec_mode=codegen" in rendered
    assert "codegen:" in rendered
    interp_doc = Transformer(deptstore.mapping_fig6(), exec_mode="interp").explain_plan(
        deptstore.source_instance()
    ).to_dict()
    assert interp_doc["exec_mode"] == "interp"
    assert "codegen" not in interp_doc
    # Counters agree between the modes, section aside.
    assert [lvl["counters"] for lvl in doc["levels"]] == [
        lvl["counters"] for lvl in interp_doc["levels"]
    ]
