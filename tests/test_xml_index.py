"""Tests for the per-document navigation index (:mod:`repro.xml.index`).

The index must be a transparent cache: every lookup returns exactly
what the uncached :class:`XmlElement` navigation would, tables are
built once per (element, tag), and the shared registry hands the same
index to every engine touching the same document root.
"""

from __future__ import annotations

import pytest

from repro.xml import (
    DocumentIndex,
    clear_index_registry,
    index_for,
)
from repro.xml.model import element
from repro.xml.parser import parse_xml
from repro.xml.paths import parse_path


@pytest.fixture
def doc():
    return parse_xml(
        """
        <source>
          <dept id="1">
            <dname>ICT</dname>
            <Proj pid="1"><pname>Appliances</pname></Proj>
            <Proj pid="2"><pname>Robotics</pname></Proj>
            <regEmp pid="1"><ename>John</ename><sal>9000</sal></regEmp>
          </dept>
          <dept id="2">
            <dname>Marketing</dname>
            <Proj pid="3"><pname>Promo</pname></Proj>
          </dept>
        </source>
        """
    )


@pytest.fixture(autouse=True)
def fresh_registry():
    clear_index_registry()
    yield
    clear_index_registry()


class TestChildren:
    def test_matches_findall(self, doc):
        index = DocumentIndex(doc)
        for node in [doc, *doc.children]:
            for tag in ("dept", "Proj", "dname", "nosuch"):
                assert index.children(node, tag) == node.findall(tag)

    def test_preserves_document_order(self, doc):
        index = DocumentIndex(doc)
        dept = doc.children[0]
        names = [
            p.findall("pname")[0].text for p in index.children(dept, "Proj")
        ]
        assert names == ["Appliances", "Robotics"]

    def test_table_built_once_per_element(self, doc):
        index = DocumentIndex(doc)
        dept = doc.children[0]
        index.children(dept, "Proj")
        index.children(dept, "regEmp")
        index.children(dept, "Proj")
        assert index.stats.child_tables_built == 1
        assert index.stats.child_lookups == 3

    def test_foreign_element_is_pinned(self, doc):
        """Looking up a freshly built element must not leave a dangling
        id-keyed table behind (the pin keeps the element alive)."""
        index = DocumentIndex(doc)
        temp = element("x", element("y"))
        assert len(index.children(temp, "y")) == 1
        assert temp in index._pins


class TestDescendants:
    def test_matches_descendants(self, doc):
        index = DocumentIndex(doc)
        assert index.descendants(doc, "pname") == doc.descendants("pname")
        assert index.descendants(doc, "Proj") == doc.descendants("Proj")
        assert index.descendants(doc, "nosuch") == []

    def test_built_once(self, doc):
        index = DocumentIndex(doc)
        index.descendants(doc, "Proj")
        index.descendants(doc, "Proj")
        assert index.stats.descendant_tables_built == 1
        assert index.stats.descendant_lookups == 2


class TestEvaluate:
    def test_matches_plain_path_evaluation(self, doc):
        from repro.xml.paths import evaluate

        index = DocumentIndex(doc)
        for text in ("dept/Proj/pname", "dept/@id", "dept/dname"):
            path = parse_path(text)
            assert index.evaluate(path, doc) == evaluate(path, doc)

    def test_repeat_evaluation_is_a_hit(self, doc):
        index = DocumentIndex(doc)
        path = parse_path("dept/Proj")
        first = index.evaluate(path, doc)
        second = index.evaluate(path, doc)
        assert first == second
        assert index.stats.path_hits == 1
        assert index.stats.path_misses == 1

    def test_iterable_context_is_not_memoized(self, doc):
        index = DocumentIndex(doc)
        path = parse_path("Proj/pname")
        found = index.evaluate(path, list(doc.children))
        assert [node.text for node in found] == [
            "Appliances", "Robotics", "Promo",
        ]
        assert index.stats.path_hits == 0

    def test_rejects_non_element_root(self):
        with pytest.raises(TypeError):
            DocumentIndex("not an element")  # type: ignore[arg-type]


class TestRegistry:
    def test_same_root_same_index(self, doc):
        assert index_for(doc) is index_for(doc)

    def test_distinct_roots_distinct_indexes(self, doc):
        other = parse_xml("<source/>")
        assert index_for(doc) is not index_for(other)

    def test_registry_is_bounded(self):
        from repro.xml.index import _REGISTRY, _REGISTRY_CAPACITY

        roots = [element("r", n=i) for i in range(_REGISTRY_CAPACITY + 3)]
        for root in roots:
            index_for(root)
        assert len(_REGISTRY) == _REGISTRY_CAPACITY
        # The most recent roots survive; the oldest were evicted.
        assert index_for(roots[-1]).root is roots[-1]

    def test_engines_share_one_index(self, doc):
        """The tgd engine and the XQuery interpreter navigating the
        same document hit one shared set of tables."""
        from repro.core.compile import compile_clip
        from repro.executor import prepare
        from repro.scenarios import deptstore
        from repro.xquery import emit_xquery, run_query

        instance = deptstore.source_instance()
        tgd = compile_clip(deptstore.mapping_fig5())
        prepare(tgd).run(instance)
        index = index_for(instance)
        lookups_after_tgd = index.stats.child_lookups
        assert lookups_after_tgd > 0
        run_query(emit_xquery(tgd), instance)
        assert index_for(instance) is index
        assert index.stats.child_lookups > lookups_after_tgd


class TestInvalidate:
    def test_mutation_after_invalidate_is_visible(self, doc):
        index = DocumentIndex(doc)
        dept = doc.findall("dept")[0]
        assert len(index.children(dept, "Proj")) == 2
        dept.append(element("Proj", element("pname", text="New"), pid=9))
        index.invalidate(dept)
        assert len(index.children(dept, "Proj")) == 3

    def test_ancestor_tables_are_dropped_too(self, doc):
        index = DocumentIndex(doc)
        dept = doc.findall("dept")[0]
        assert len(index.descendants(doc, "Proj")) == 3
        dept.append(element("Proj", element("pname", text="New"), pid=9))
        # Invalidating at the mutation site must also clear the root's
        # descendant table, which reaches into the mutated subtree.
        index.invalidate(dept)
        assert len(index.descendants(doc, "Proj")) == 4

    def test_sibling_tables_survive(self, doc):
        index = DocumentIndex(doc)
        first, second = doc.findall("dept")
        index.children(first, "Proj")
        index.children(second, "Proj")
        built_before = index.stats.child_tables_built
        first.append(element("Proj", element("pname", text="New"), pid=9))
        index.invalidate(first)
        # The sibling's table was not dropped: reading it builds nothing.
        index.children(second, "Proj")
        assert index.stats.child_tables_built == built_before
        # The mutated element's table is rebuilt on next access.
        assert len(index.children(first, "Proj")) == 3
        assert index.stats.child_tables_built == built_before + 1

    def test_memoized_paths_are_dropped_along_the_chain(self, doc):
        index = DocumentIndex(doc)
        path = parse_path("dept/Proj/pname")
        assert len(index.evaluate(path, doc)) == 3
        dept = doc.findall("dept")[1]
        proj = dept.findall("Proj")[0]
        field = proj.find("pname")
        field.clear_text()
        field.set_text("Renamed")
        index.invalidate(field)
        results = index.evaluate(path, doc)
        assert any(
            getattr(node, "text", None) == "Renamed" for node in results
        )
