"""Unit tests for instance-against-schema validation."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.scenarios import deptstore
from repro.xml.model import element
from repro.xsd.validate import is_valid, validate


@pytest.fixture
def schema():
    return deptstore.source_schema()


def _minimal():
    return element(
        "source",
        element(
            "dept",
            element("dname", text="ICT"),
            element("Proj", element("pname", text="X"), pid=1),
            element(
                "regEmp",
                element("ename", text="A"),
                element("sal", text=10),
                pid=1,
            ),
        ),
    )


class TestStructural:
    def test_valid_instance(self, schema):
        assert validate(_minimal(), schema) == []
        assert is_valid(deptstore.source_instance(), schema)

    def test_wrong_root(self, schema):
        violations = validate(element("wrong"), schema)
        assert any("root element" in str(v) for v in violations)

    def test_missing_required_child(self, schema):
        inst = element("source", element("dept"))  # dname [1..1] missing
        assert any("dname" in str(v) for v in validate(inst, schema))

    def test_cardinality_violation_reports_range(self, schema):
        inst = element("source")  # dept is [1..*]
        (violation,) = [v for v in validate(inst, schema) if "dept" in str(v)]
        assert "[1..*]" in str(violation)

    def test_undeclared_child(self, schema):
        inst = _minimal()
        inst.find("dept").append(element("intern"))
        assert any("undeclared child" in str(v) for v in validate(inst, schema))

    def test_undeclared_attribute(self, schema):
        inst = _minimal()
        inst.find("dept").set_attribute("head", "x")
        assert any("undeclared attribute" in str(v) for v in validate(inst, schema))

    def test_missing_required_attribute(self, schema):
        inst = _minimal()
        bad = element("Proj", element("pname", text="Y"))  # no @pid
        inst.find("dept").append(bad)
        assert any("missing required attribute @pid" in str(v) for v in validate(inst, schema))

    def test_wrong_attribute_type(self, schema):
        inst = _minimal()
        inst.find("dept").find("Proj").set_attribute("pid", "not-an-int")
        assert any("expected int" in str(v) for v in validate(inst, schema))

    def test_wrong_text_type(self, schema):
        inst = _minimal()
        sal = inst.find("dept").find("regEmp").find("sal")
        object.__setattr__ if False else None
        sal._text = "high"  # bypass the typed setter deliberately
        assert any("does not match type" in str(v) for v in validate(inst, schema))

    def test_missing_text(self, schema):
        inst = _minimal()
        inst.find("dept").find("dname")._text = None
        assert any("missing text value" in str(v) for v in validate(inst, schema))

    def test_unexpected_text_on_element_only_content(self, schema):
        inst = _minimal()
        dept = inst.find("dept")
        dept._children, saved = [], dept._children
        dept._text = "oops"
        violations = validate(inst, schema)
        assert any("unexpected text" in str(v) for v in violations)

    def test_violation_locations_are_indexed_paths(self, schema):
        inst = _minimal()
        inst.find("dept").append(element("Proj", element("pname", text="Z")))
        violations = [v for v in validate(inst, schema) if "@pid" in str(v)]
        assert violations and "/source/dept[1]/Proj[2]" in violations[0].location


class TestKeyref:
    def test_dangling_reference_detected(self, schema):
        inst = _minimal()
        inst.find("dept").append(
            element("regEmp", element("ename", text="B"), element("sal", text=1), pid=99)
        )
        violations = validate(inst, schema)
        assert any("keyref" in str(v) and "99" in str(v) for v in violations)

    def test_constraints_can_be_skipped(self, schema):
        inst = _minimal()
        inst.find("dept").append(
            element("regEmp", element("ename", text="B"), element("sal", text=1), pid=99)
        )
        assert validate(inst, schema, check_constraints=False) == []


class TestRaising:
    def test_raise_on_error(self, schema):
        with pytest.raises(ValidationError) as exc:
            validate(element("source"), schema, raise_on_error=True)
        assert exc.value.violations

    def test_no_raise_when_valid(self, schema):
        assert validate(_minimal(), schema, raise_on_error=True) == []
