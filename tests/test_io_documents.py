"""Tests for mapping-document persistence (save/load round trips)."""

from __future__ import annotations

import json

import pytest

from repro.core.compile import compile_clip
from repro.errors import MappingError
from repro.executor import execute
from repro.io import dumps, from_document, load, loads, save, to_document
from repro.scenarios import deptstore, generic


ALL_FIGURES = [f.figure for f in deptstore.FIGURES]


class TestRoundTrip:
    @pytest.mark.parametrize("fig", ALL_FIGURES)
    def test_every_figure_mapping_roundtrips(self, fig):
        clip = deptstore.scenario(fig).make_mapping()
        recovered = loads(dumps(clip))
        instance = deptstore.source_instance()
        assert execute(compile_clip(recovered), instance) == execute(
            compile_clip(clip), instance
        )

    def test_structure_preserved(self):
        clip = deptstore.mapping_fig7()
        recovered = loads(dumps(clip))
        (root,) = recovered.roots
        assert root.is_group
        assert str(root.grouping[0]) == "$p.pname.value"
        (child,) = root.children
        assert [a.variable for a in child.incoming] == ["p2", "r"]
        assert str(child.condition) == "$p2.@pid = $r.@pid"

    def test_aggregate_tags_survive(self):
        clip = deptstore.mapping_fig9()
        recovered = loads(dumps(clip))
        tags = [vm.aggregate.name for vm in recovered.value_mappings if vm.is_aggregate]
        assert tags == ["count", "count", "avg"]

    def test_scalar_functions_survive(self):
        from repro.core.functions import CONCAT

        clip = deptstore.mapping_fig5()
        clip.value(
            ["dept/dname/value", "dept/dname/value"],
            "department/project/@name",
            function=CONCAT,
        )
        recovered = loads(dumps(clip))
        assert recovered.value_mappings[-1].function is CONCAT

    def test_keyref_constraints_survive(self):
        clip = deptstore.mapping_fig6()
        recovered = loads(dumps(clip))
        assert len(recovered.source.constraints) == 1

    def test_generic_mappings_roundtrip(self, generic_source, generic_target):
        clip = generic.clip_mapping_product(generic_source, generic_target)
        recovered = loads(dumps(clip))
        instance = generic.sample_instance()
        assert execute(compile_clip(recovered), instance) == execute(
            compile_clip(clip), instance
        )

    def test_file_save_load(self, tmp_path):
        clip = deptstore.mapping_fig4()
        path = tmp_path / "mapping.json"
        save(clip, str(path))
        recovered = load(str(path))
        assert len(recovered.build_nodes()) == 2


class TestDocumentShape:
    def test_header_fields(self):
        document = to_document(deptstore.mapping_fig3())
        assert document["format"] == "clip-mapping"
        assert document["version"] == 1
        assert "xs:schema" in document["source"]

    def test_node_ids_are_topological(self):
        document = to_document(deptstore.mapping_fig7())
        nodes = document["build_nodes"]
        for entry in nodes:
            if entry["parent"] is not None:
                assert entry["parent"] < entry["id"]

    def test_json_is_stable(self):
        clip = deptstore.mapping_fig5()
        assert dumps(clip) == dumps(loads(dumps(clip)))


class TestErrors:
    def test_wrong_format_rejected(self):
        with pytest.raises(MappingError):
            from_document({"format": "something-else", "version": 1})

    def test_wrong_version_rejected(self):
        document = to_document(deptstore.mapping_fig3())
        document["version"] = 99
        with pytest.raises(MappingError):
            from_document(document)

    def test_malformed_json_rejected(self):
        with pytest.raises(MappingError):
            loads("{not json")

    def test_dangling_parent_rejected(self):
        document = to_document(deptstore.mapping_fig4())
        document["build_nodes"][1]["parent"] = 42
        with pytest.raises(MappingError):
            from_document(document)

    def test_group_without_target_rejected(self):
        document = to_document(deptstore.mapping_fig7())
        document["build_nodes"][0]["target"] = None
        with pytest.raises(MappingError):
            from_document(document)

    def test_element_source_without_aggregate_rejected(self):
        document = to_document(deptstore.mapping_fig9())
        for vm in document["value_mappings"]:
            vm["aggregate"] = None
        with pytest.raises(MappingError):
            from_document(document)
