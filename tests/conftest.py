"""Shared fixtures: the paper's schemas and instances."""

from __future__ import annotations

import pytest

from repro.scenarios import deptstore, generic


@pytest.fixture
def dead_letter_dir(tmp_path):
    """A per-test dead-letter root.

    Derived from ``tmp_path``, so parallel pytest runs (CI matrix legs,
    xdist workers) can never collide on dead-letter output.  Every test
    that persists dead letters routes them through this fixture instead
    of inventing its own directory.
    """
    directory = tmp_path / "dead-letters"
    directory.mkdir()
    return directory


@pytest.fixture
def source_schema():
    return deptstore.source_schema()


@pytest.fixture
def source_instance():
    return deptstore.source_instance()


@pytest.fixture
def departments_target():
    return deptstore.target_schema_departments()


@pytest.fixture
def generic_source():
    return generic.source_schema()


@pytest.fixture
def generic_target():
    return generic.target_schema()
