"""Unit tests for tableau computation (Section V-A)."""

from __future__ import annotations

import pytest

from repro.errors import GenerationError
from repro.generation import (
    Tableau,
    chase,
    compute_tableaux,
    dependency_graph,
    primary_tableaux,
    product_tableau,
)
from repro.scenarios import deptstore, generic


class TestPrimaryTableaux:
    def test_one_tableau_per_repeating_element(self, source_schema):
        tableaux = primary_tableaux(source_schema)
        assert [t.shorthand() for t in tableaux] == [
            "{dept}",
            "{dept-Proj}",
            "{dept-regEmp}",
        ]

    def test_fig10_tableaux(self, generic_source):
        names = [t.shorthand() for t in compute_tableaux(generic_source)]
        assert names == ["{A}", "{A-B}", "{A-B-C}", "{A-D}", "{A-D-E}"]

    def test_fig10_target_tableaux(self, generic_target):
        names = [t.shorthand() for t in compute_tableaux(generic_target)]
        assert names == ["{F}", "{F-G}"]


class TestChase:
    def test_paper_section5_example(self, source_schema):
        """'Clio detects three tableaux in that schema: {dept},
        {dept-Proj}, and {dept-Proj-regEmp, @pid=@pid}.'"""
        tableaux = compute_tableaux(source_schema)
        assert len(tableaux) == 3
        chased = tableaux[2]
        names = {e.name for e in chased.generators}
        assert names == {"dept", "Proj", "regEmp"}
        assert len(chased.conditions) == 1
        assert chased.conditions[0].shorthand() == "@pid=@pid"

    def test_chase_is_fixpoint(self, source_schema):
        tableaux = compute_tableaux(source_schema)
        assert [chase(t, source_schema) for t in tableaux] == tableaux

    def test_chase_can_be_disabled(self, source_schema):
        tableaux = compute_tableaux(source_schema, use_chase=False)
        assert all(not t.conditions for t in tableaux)

    def test_unrelated_tableaux_untouched(self, source_schema):
        dept_only = primary_tableaux(source_schema)[0]
        assert chase(dept_only, source_schema) == dept_only


class TestCoverage:
    def test_covers_value_requires_all_repeating_ancestors(self, source_schema):
        tableaux = compute_tableaux(source_schema)
        ename = source_schema.value("dept/regEmp/ename/value")
        assert not tableaux[0].covers_value(ename)  # {dept}
        assert not tableaux[1].covers_value(ename)  # {dept-Proj}
        assert tableaux[2].covers_value(ename)      # the chased tableau

    def test_covers_element_of_non_repeating_descendant(self, source_schema):
        dept_tableau = compute_tableaux(source_schema)[0]
        assert dept_tableau.covers_element(source_schema.element("dept/dname"))


class TestOrder:
    def test_subset_order(self, generic_source):
        a, ab, abc, ad, ade = compute_tableaux(generic_source)
        assert a.is_proper_subset_of(ab)
        assert ab.is_proper_subset_of(abc)
        assert not ab.is_subset_of(ad)
        assert a.is_subset_of(a)

    def test_conditions_participate_in_order(self, source_schema):
        plain, with_cond = (
            compute_tableaux(source_schema, use_chase=False)[2],
            compute_tableaux(source_schema)[2],
        )
        assert plain.is_proper_subset_of(with_cond) or not plain.is_subset_of(with_cond)

    def test_equality_is_set_based(self, generic_source):
        a_elem = generic_source.element("A")
        b_elem = generic_source.element("A/B")
        assert Tableau((a_elem, b_elem)) == Tableau((b_elem, a_elem))

    def test_dependency_graph_is_hasse_diagram(self, generic_source):
        tableaux = compute_tableaux(generic_source)
        edges = dependency_graph(tableaux)
        shorthand = {(lo.shorthand(), hi.shorthand()) for lo, hi in edges}
        assert ("{A}", "{A-B}") in shorthand
        assert ("{A}", "{A-D}") in shorthand
        assert ("{A-B}", "{A-B-C}") in shorthand
        # Transitive edge must be absent from the Hasse diagram:
        assert ("{A}", "{A-B-C}") not in shorthand


class TestProductTableau:
    def test_abd_product(self, generic_source):
        abd = product_tableau(
            generic_source,
            [generic_source.element("A/B"), generic_source.element("A/D")],
        )
        assert {e.name for e in abd.generators} == {"A", "B", "D"}

    def test_product_requires_repeating_elements(self, generic_source):
        with pytest.raises(GenerationError):
            product_tableau(generic_source, [])

    def test_product_participates_in_order(self, generic_source):
        tableaux = compute_tableaux(generic_source)
        abd = product_tableau(
            generic_source,
            [generic_source.element("A/B"), generic_source.element("A/D")],
        )
        ab = tableaux[1]
        assert ab.is_proper_subset_of(abd)
