"""Unit tests for the XML instance model."""

from __future__ import annotations

import pytest

from repro.errors import XmlError
from repro.xml.model import XmlElement, element


class TestConstruction:
    def test_element_helper_builds_children_attrs_text(self):
        node = element("Proj", element("pname", text="Robotics"), pid=2)
        assert node.tag == "Proj"
        assert node.attribute("pid") == 2
        assert node.find("pname").text == "Robotics"

    def test_attribute_accepts_at_prefixed_name(self):
        node = element("e", pid=1)
        assert node.attribute("@pid") == 1
        assert node.has_attribute("@pid")

    def test_text_and_children_are_mutually_exclusive(self):
        with pytest.raises(XmlError):
            element("e", element("c"), text="boom")
        leaf = element("e", text="v")
        with pytest.raises(XmlError):
            leaf.append(element("c"))

    def test_child_cannot_have_two_parents(self):
        child = element("c")
        element("p1", child)
        with pytest.raises(XmlError):
            element("p2", child)

    def test_rejects_non_atomic_attribute_values(self):
        node = element("e")
        with pytest.raises(XmlError):
            node.set_attribute("a", [1, 2])

    def test_rejects_illegal_names(self):
        with pytest.raises(XmlError):
            XmlElement("1badname")
        with pytest.raises(XmlError):
            element("e").set_attribute("has space", "v")

    def test_extend_appends_in_order(self):
        node = element("p")
        node.extend([element("a"), element("b")])
        assert [c.tag for c in node.children] == ["a", "b"]


class TestNavigation:
    def test_find_returns_first_match_only(self):
        node = element("p", element("x", n=1), element("x", n=2))
        assert node.find("x").attribute("n") == 1

    def test_findall_preserves_document_order(self):
        node = element("p", element("x", n=1), element("y"), element("x", n=2))
        assert [c.attribute("n") for c in node.findall("x")] == [1, 2]

    def test_iter_is_preorder(self):
        tree = element("a", element("b", element("c")), element("d"))
        assert [n.tag for n in tree.iter()] == ["a", "b", "c", "d"]

    def test_descendants_excludes_self(self):
        tree = element("x", element("x"), element("y", element("x")))
        # descendants() walks depth-first, excluding the root itself.
        assert len(tree.descendants("x")) == 2

    def test_path_from_root(self):
        inner = element("c")
        element("a", element("b", inner))
        assert [n.tag for n in inner.path_from_root()] == ["a", "b", "c"]

    def test_len_and_iteration(self):
        node = element("p", element("a"), element("b"))
        assert len(node) == 2
        assert [c.tag for c in node] == ["a", "b"]

    def test_size_counts_subtree(self):
        tree = element("a", element("b", element("c")), element("d"))
        assert tree.size() == 4


class TestEquality:
    def test_order_sensitive_equality(self):
        left = element("p", element("a"), element("b"))
        right = element("p", element("b"), element("a"))
        assert left != right
        assert left.equals_canonically(right)

    def test_equality_covers_attributes_and_text(self):
        assert element("e", text="x", a=1) == element("e", text="x", a=1)
        assert element("e", text="x", a=1) != element("e", text="x", a=2)
        assert element("e", text="x") != element("e", text="y")

    def test_attribute_order_is_canonicalized(self):
        left = XmlElement("e", attributes={"a": 1, "b": 2})
        right = XmlElement("e", attributes={"b": 2, "a": 1})
        assert left == right

    def test_typed_values_distinguish_int_from_string(self):
        assert element("e", text=1) != element("e", text="1")

    def test_hashable_consistent_with_equality(self):
        assert hash(element("e", a=1)) == hash(element("e", a=1))

    def test_canonical_is_idempotent(self):
        tree = element("p", element("b"), element("a", z=1, y=2))
        once = tree.canonical()
        assert once == once.canonical()


class TestCopy:
    def test_copy_is_deep_and_detached(self):
        tree = element("p", element("c", text="v"), a=1)
        clone = tree.copy()
        assert clone == tree
        assert clone is not tree
        assert clone.parent is None
        assert clone.find("c") is not tree.find("c")

    def test_copy_mutation_does_not_leak(self):
        tree = element("p", element("c"))
        clone = tree.copy()
        clone.append(element("extra"))
        assert tree.find("extra") is None
