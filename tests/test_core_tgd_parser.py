"""Tests for the paper-notation tgd parser."""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.core.tgd import (
    AggregateApp,
    Constant,
    Membership,
    Proj,
    SchemaRoot,
    TgdComparison,
    Var,
    render_tgd,
)
from repro.core.tgd_parser import parse_tgd
from repro.errors import MappingError
from repro.executor import execute
from repro.scenarios import deptstore, generic


class TestBasicParsing:
    def test_simple_tgd(self):
        tgd = parse_tgd(
            "∀ d ∈ source.dept, r ∈ d.regEmp | r.sal.value > 11000 →\n"
            "  ∃ d′ ∈ target.department, e′ ∈ d′.employee |\n"
            "    e′.@name = r.ename.value"
        )
        (mapping,) = tgd.roots
        assert [g.var for g in mapping.source_gens] == ["d", "r"]
        (condition,) = mapping.where
        assert isinstance(condition, TgdComparison)
        assert condition.right == Constant(11000)
        assert [g.quantified for g in mapping.target_gens] == [False, True]
        (assignment,) = mapping.assignments
        assert str(assignment) == "e′.@name = r.ename.value"

    def test_ascii_fallbacks(self):
        tgd = parse_tgd(
            "forall d in source.dept -> exists d' in target.department | "
            "d'.@name = d.dname.value"
        )
        (mapping,) = tgd.roots
        assert mapping.target_gens[0].var == "d'"

    def test_schema_roots_resolved_by_name(self):
        tgd = parse_tgd(
            "∀ a ∈ ROOT.A → ∃ f′ ∈ TROOT.F",
            source_root="ROOT",
            target_root="TROOT",
        )
        gen = tgd.roots[0].source_gens[0]
        assert isinstance(gen.expr, Proj)
        assert gen.expr.base == SchemaRoot("ROOT")

    def test_membership_condition(self):
        tgd = parse_tgd(
            "∀ p2 ∈ p, d2 ∈ source.dept | p2 ∈ d2.Proj → "
            "∃ d′ ∈ target.department"
        )
        (membership,) = tgd.roots[0].where
        assert isinstance(membership, Membership)
        assert membership.member == Var("p2")

    def test_nested_submappings(self):
        tgd = parse_tgd(
            "∀ d ∈ source.dept →\n"
            "  ∃ d′ ∈ target.department\n"
            "    [∀ r ∈ d.regEmp → ∃ e′ ∈ d′.employee | e′.@name = r.ename.value]"
        )
        (root,) = tgd.roots
        assert len(root.submappings) == 1

    def test_aggregate_functions(self):
        tgd = parse_tgd(
            "∃ count(\n"
            "  ∀ d ∈ source.dept → ∃ d′ ∈ target.department |\n"
            "    d′.@numProj = count(d.Proj))"
        )
        assert tgd.functions == ("count",)
        (assignment,) = tgd.roots[0].assignments
        assert isinstance(assignment.value, AggregateApp)

    def test_group_by_skolem(self):
        tgd = parse_tgd(
            "∃ group-by(\n"
            "  ∀ d ∈ source.dept, p ∈ d.Proj →\n"
            "    ∃ p′ ∈ target.project |\n"
            "      p′ = group-by(⊥, [p.pname.value]),\n"
            "      p′.@name = p.pname.value)"
        )
        (root,) = tgd.roots
        assert root.skolem is not None
        var, app = root.skolem
        assert var == "p'"
        assert app.context is None
        assert root.grouped_var == "p"

    def test_string_and_boolean_constants(self):
        tgd = parse_tgd(
            "∀ d ∈ source.dept | d.dname.value = 'ICT' → ∃ d′ ∈ target.department"
        )
        (condition,) = tgd.roots[0].where
        assert condition.right == Constant("ICT")


class TestErrors:
    def test_garbage_rejected(self):
        with pytest.raises(MappingError):
            parse_tgd("⟦not a tgd⟧")

    def test_trailing_content_rejected(self):
        with pytest.raises(MappingError):
            parse_tgd("∀ d ∈ source.dept → ∃ d′ ∈ target.department )")

    def test_truncated_rejected(self):
        with pytest.raises(MappingError):
            parse_tgd("∀ d ∈")


class TestRoundTrip:
    """parse(render(tgd)) evaluates identically, for every figure."""

    @pytest.mark.parametrize("fig", [f.figure for f in deptstore.FIGURES])
    def test_figures(self, fig):
        instance = deptstore.source_instance()
        tgd = compile_clip(deptstore.scenario(fig).make_mapping())
        reparsed = parse_tgd(render_tgd(tgd))
        assert execute(reparsed, instance) == execute(tgd, instance)

    def test_generic_scenarios(self, generic_source, generic_target):
        instance = generic.sample_instance()
        for factory in (generic.clip_mapping_nested, generic.clip_mapping_product):
            tgd = compile_clip(factory(generic_source, generic_target))
            reparsed = parse_tgd(
                render_tgd(tgd), source_root="ROOT", target_root="TROOT"
            )
            assert execute(reparsed, instance) == execute(tgd, instance)

    def test_render_parse_render_is_stable(self):
        tgd = compile_clip(deptstore.mapping_fig7())
        text = render_tgd(tgd)
        assert render_tgd(parse_tgd(text)) == text

    def test_paper_verbatim_figure7_tgd_executes(self):
        """The tgd exactly as the paper prints it (plus the membership
        the output requires) runs and reproduces Figure 7."""
        text = (
            "∃ group-by(\n"
            "  ∀ d ∈ source.dept, p ∈ d.Proj →\n"
            "    ∃ p′ ∈ target.project |\n"
            "      p′ = group-by(⊥, [p.pname.value]),\n"
            "      p′.@name = p.pname.value,\n"
            "      [∀ p2 ∈ p, d2 ∈ source.dept, r ∈ d2.regEmp | "
            "p2.@pid = r.@pid, p2 ∈ d2.Proj →\n"
            "        ∃ e′ ∈ p′.employee | e′.@name = r.ename.value])"
        )
        tgd = parse_tgd(text)
        out = execute(tgd, deptstore.source_instance())
        assert out == deptstore.expected_fig7()
