"""Unit tests for the join-aware planner (:mod:`repro.executor.planner`).

The differential suites prove the planner never changes output bytes;
this module pins down *how* it evaluates: which conditions become hash
joins, which are pushed into generator enumeration, when generators
are reordered (and that document order survives the reorder), how the
``CLIP_OPTIMIZE`` toggle and the plan fingerprint behave, and what the
runtime counters report.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.compile import compile_clip
from repro.core.tgd import (
    Constant,
    Proj,
    SchemaRoot,
    SourceGenerator,
    TgdComparison,
    TgdMapping,
    Var,
)
from repro.executor import explain_plan, prepare
from repro.executor.planner import (
    OPTIMIZE_ENV,
    PlanCounters,
    plan_level,
    plan_tgd,
    resolve_optimize,
)
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance
from repro.xml.model import element
from repro.xml.serialize import to_xml


@pytest.fixture(scope="module")
def workload():
    return make_deptstore_instance(
        DeptstoreSpec(departments=6, projects_per_dept=5, employees_per_dept=10)
    )


# -- resolve_optimize / environment toggle -----------------------------------


class TestResolveOptimize:
    def test_explicit_flag_wins_over_environment(self, monkeypatch):
        monkeypatch.setenv(OPTIMIZE_ENV, "0")
        assert resolve_optimize(True) is True
        monkeypatch.setenv(OPTIMIZE_ENV, "1")
        assert resolve_optimize(False) is False

    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv(OPTIMIZE_ENV, raising=False)
        assert resolve_optimize(None) is True

    @pytest.mark.parametrize("value", ["0", "false", "NO", " Off "])
    def test_falsy_environment_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(OPTIMIZE_ENV, value)
        assert resolve_optimize(None) is False

    @pytest.mark.parametrize("value", ["1", "true", "yes", "anything"])
    def test_other_environment_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(OPTIMIZE_ENV, value)
        assert resolve_optimize(None) is True

    def test_environment_default_reaches_prepare(self, monkeypatch):
        tgd = compile_clip(deptstore.mapping_fig6())
        monkeypatch.setenv(OPTIMIZE_ENV, "0")
        assert prepare(tgd).planned is None
        # Explicit flag still wins under the env toggle.
        assert prepare(tgd, optimize=True).planned is not None
        monkeypatch.delenv(OPTIMIZE_ENV)
        assert prepare(tgd).planned is not None


# -- condition classification ------------------------------------------------


class TestClassification:
    def test_fig6_equality_becomes_hash_join(self):
        planned = plan_tgd(compile_clip(deptstore.mapping_fig6()))
        inner = planned.levels[1]
        joins = [j for slot in inner.slots for j in slot.eq_joins]
        assert len(joins) == 1
        (join,) = joins
        assert join.build_var == "r"
        described = join.describe()
        assert described["kind"] == "equality"
        assert described["build"] == "r.@pid"
        assert described["probe"] == "p.@pid"
        assert not inner.residual and not inner.pre_conditions

    def test_fig3_filter_is_pushed_into_enumeration(self):
        planned = plan_tgd(compile_clip(deptstore.mapping_fig3()))
        (level,) = planned.levels
        by_var = {
            level.mapping.source_gens[slot.position].var: slot
            for slot in level.slots
        }
        assert [str(c) for c in by_var["r"].seq_filters] == [
            "r.sal.value > 11000"
        ]
        assert not by_var["r"].env_filters
        assert not level.residual

    def test_fig7_membership_becomes_identity_join(self):
        planned = plan_tgd(compile_clip(deptstore.mapping_fig7()))
        inner = planned.levels[1]
        mem = [j for slot in inner.slots for j in slot.mem_joins]
        assert len(mem) == 1
        assert mem[0].describe()["kind"] == "membership"
        # The same level also carries the pid equality join.
        assert any(slot.eq_joins for slot in inner.slots)

    def test_describe_shape_is_json_ready(self):
        import json

        planned = plan_tgd(compile_clip(deptstore.mapping_fig7()))
        doc = planned.describe()
        json.dumps(doc)  # must be serializable as-is
        for level in doc["levels"]:
            assert set(level) >= {
                "label", "depth", "grouped", "order", "reordered",
                "pre_filters", "generators", "residual",
            }


# -- selectivity reordering --------------------------------------------------


def _flat_mapping(where):
    """Two independent generators over schema-root collections."""
    return TgdMapping(
        source_gens=(
            SourceGenerator("p", Proj(SchemaRoot("source"), "Proj")),
            SourceGenerator("r", Proj(SchemaRoot("source"), "regEmp")),
        ),
        where=tuple(where),
        target_gens=(),
        assignments=(),
    )


class TestReordering:
    def test_own_filtered_generator_moves_first(self):
        condition = TgdComparison(Proj(Var("r"), "@pid"), "=", Constant(2))
        level = plan_level(_flat_mapping([condition]), 0)
        assert level.order == (1, 0)
        assert level.reordered is True
        assert level.slots[0].seq_filters == (condition,)

    def test_unfiltered_generators_keep_source_order(self):
        level = plan_level(_flat_mapping([]), 0)
        assert level.order == (0, 1)
        assert level.reordered is False

    def test_dependency_blocks_reorder(self):
        # r is rooted at d, so a filter on r cannot hoist it above d.
        mapping = TgdMapping(
            source_gens=(
                SourceGenerator("d", Proj(SchemaRoot("source"), "dept")),
                SourceGenerator("r", Proj(Var("d"), "regEmp")),
            ),
            where=(TgdComparison(Proj(Var("r"), "@pid"), "=", Constant(2)),),
            target_gens=(),
            assignments=(),
        )
        level = plan_level(mapping, 0)
        assert level.order == (0, 1)
        assert level.reordered is False

    def test_reordered_execution_restores_document_order(self, workload):
        """A vacuous filter on the join side forces a reorder (r before
        p); the surviving environments must still come out in the naive
        nested-loop order, byte for byte."""
        tgd = compile_clip(deptstore.mapping_fig6())
        root = tgd.roots[0]
        inner = root.submappings[0]
        vacuous = TgdComparison(Proj(Var("r"), "@pid"), "!=", Constant(-1))
        tgd2 = replace(
            tgd,
            roots=(
                replace(
                    root,
                    submappings=(
                        replace(inner, where=inner.where + (vacuous,)),
                    )
                    + root.submappings[1:],
                ),
            ),
        )
        level = plan_tgd(tgd2).levels[1]
        assert level.reordered is True
        gens = level.mapping.source_gens
        assert [gens[p].var for p in level.order] == ["r", "p"]
        fast = prepare(tgd2, optimize=True).run(workload)
        slow = prepare(tgd2, optimize=False).run(workload)
        assert to_xml(fast) == to_xml(slow)
        # The vacuous filter changed nothing vs. plain Figure 6.
        assert to_xml(fast) == to_xml(prepare(tgd).run(workload))


# -- join runtime semantics --------------------------------------------------


class TestJoinSemantics:
    def test_nan_keys_never_join(self):
        """NaN != NaN: a hash table keyed on identity would wrongly
        match a NaN probe against a NaN build row; both sides must skip
        NaN keys, exactly like the naive comparison."""
        nan = float("nan")
        instance = element(
            "source",
            element(
                "dept",
                element("dname", text="D"),
                element("Proj", element("pname", text="P"), pid=nan),
                element("Proj", element("pname", text="Q"), pid=1),
                element(
                    "regEmp",
                    element("ename", text="E"),
                    element("sal", text=9000),
                    pid=nan,
                ),
                element(
                    "regEmp",
                    element("ename", text="F"),
                    element("sal", text=9500),
                    pid=1,
                ),
            ),
        )
        tgd = compile_clip(deptstore.mapping_fig6())
        fast = prepare(tgd, optimize=True).run(instance)
        slow = prepare(tgd, optimize=False).run(instance)
        assert to_xml(fast) == to_xml(slow)
        # Only the pid=1 pair joined.
        assert "F" in to_xml(fast) and "E" not in to_xml(fast)

    def test_counters_report_build_and_probe(self):
        report = explain_plan(
            compile_clip(deptstore.mapping_fig6()),
            deptstore.source_instance(),
            optimize=True,
        )
        assert report.optimize is True
        totals = report.to_dict()["totals"]
        assert totals["join_builds"] > 0
        assert totals["join_build_rows"] > 0
        assert totals["join_probes"] > 0
        assert totals["join_probe_matches"] > 0
        rendered = report.render()
        assert "equality join @ r" in rendered
        assert "hash joins:" in rendered

    def test_explain_json_document_shape(self):
        import json

        report = explain_plan(
            compile_clip(deptstore.mapping_fig7()),
            deptstore.source_instance(),
            optimize=True,
        )
        doc = json.loads(report.to_json())
        assert doc["format"] == "clip-plan-explain"
        assert doc["version"] == 1
        assert doc["optimize"] is True
        assert len(doc["levels"]) == 2
        assert doc["result_elements"] > 0
        assert doc["totals"]["bindings_enumerated"] > 0

    def test_explain_without_optimizer_keeps_zero_counters(self):
        report = explain_plan(
            compile_clip(deptstore.mapping_fig6()),
            deptstore.source_instance(),
            optimize=False,
        )
        assert report.optimize is False
        assert all(
            c["invocations"] == 0 and c["join_builds"] == 0
            for c in report.counters
        )
        # The static plan is still described.
        assert "equality join" in report.render()


# -- counters and fingerprints -----------------------------------------------


class TestPlumbing:
    def test_counters_diff_and_snapshot(self):
        a = PlanCounters(invocations=3, join_builds=2, filter_drops=5)
        before = a.snapshot()
        a.add(PlanCounters(invocations=1, join_builds=1))
        delta = a.diff(before)
        assert delta.invocations == 1
        assert delta.join_builds == 1
        assert delta.filter_drops == 0
        assert a.to_dict()["invocations"] == 4

    def test_fingerprint_distinguishes_optimize(self, monkeypatch):
        from repro.runtime import fingerprint

        mapping = deptstore.mapping_fig6()
        optimized = fingerprint(mapping, optimize=True)
        naive = fingerprint(mapping, "tgd", optimize=False)
        assert optimized != naive
        # The unmarked default payload is the optimized one, so
        # fingerprints recorded before the planner existed still match.
        monkeypatch.delenv(OPTIMIZE_ENV, raising=False)
        assert fingerprint(mapping) == optimized

    def test_grouping_level_counts_groups(self, workload):
        report = explain_plan(
            compile_clip(deptstore.mapping_fig7()), workload, optimize=True
        )
        totals = report.to_dict()["totals"]
        assert totals["groups"] > 0
        # Loop-invariant caching kicked in.
        assert totals["seq_cache_hits"] > 0
