"""Unit tests for the canonical relational → XML Schema conversion."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.xsd.relational import (
    Column,
    ForeignKey,
    RelationalSchema,
    Table,
    rows_to_instance,
    to_xml_schema,
)
from repro.xsd.types import INT, STRING
from repro.xsd.validate import validate


@pytest.fixture
def company_db():
    return RelationalSchema(
        "companyDB",
        (
            Table(
                "department",
                (Column("did", INT), Column("dname", STRING)),
                primary_key=("did",),
            ),
            Table(
                "employee",
                (
                    Column("eid", INT),
                    Column("ename", STRING),
                    Column("did", INT),
                    Column("bonus", INT, nullable=True),
                ),
                primary_key=("eid",),
                foreign_keys=(ForeignKey("did", "department", "did"),),
            ),
        ),
    )


class TestSchemaConversion:
    def test_tables_become_repeating_elements(self, company_db):
        schema = to_xml_schema(company_db)
        assert schema.root.name == "companyDB"
        dep = schema.element("department")
        assert dep.cardinality.is_repeating
        assert dep.attribute("dname").type is STRING

    def test_nullable_columns_become_optional_attributes(self, company_db):
        schema = to_xml_schema(company_db)
        emp = schema.element("employee")
        assert not emp.attribute("bonus").required
        assert emp.attribute("ename").required

    def test_foreign_keys_become_keyrefs(self, company_db):
        schema = to_xml_schema(company_db)
        (constraint,) = schema.constraints
        assert constraint.referring.path_string() == "companyDB/employee/@did"
        assert constraint.referred.path_string() == "companyDB/department/@did"

    def test_unknown_referenced_table_rejected(self):
        bad = RelationalSchema(
            "db",
            (
                Table(
                    "a",
                    (Column("x", INT),),
                    foreign_keys=(ForeignKey("x", "missing", "x"),),
                ),
            ),
        )
        with pytest.raises(SchemaError):
            to_xml_schema(bad)

    def test_table_and_column_lookup(self, company_db):
        assert company_db.table("employee").column("ename").type is STRING
        with pytest.raises(SchemaError):
            company_db.table("nope")
        with pytest.raises(SchemaError):
            company_db.table("employee").column("nope")


class TestInstanceConversion:
    def test_rows_convert_and_validate(self, company_db):
        schema = to_xml_schema(company_db)
        instance = rows_to_instance(
            company_db,
            {
                "department": [{"did": 1, "dname": "ICT"}],
                "employee": [
                    {"eid": 10, "ename": "Ann", "did": 1, "bonus": 5},
                    {"eid": 11, "ename": "Bob", "did": 1},
                ],
            },
        )
        assert validate(instance, schema) == []
        assert len(instance.findall("employee")) == 2
        assert instance.findall("employee")[1].attribute("bonus") is None

    def test_missing_non_nullable_column_rejected(self, company_db):
        with pytest.raises(SchemaError):
            rows_to_instance(company_db, {"department": [{"did": 1}]})

    def test_unknown_column_rejected(self, company_db):
        with pytest.raises(SchemaError):
            rows_to_instance(
                company_db, {"department": [{"did": 1, "dname": "x", "extra": 1}]}
            )

    def test_dangling_fk_caught_by_validator(self, company_db):
        schema = to_xml_schema(company_db)
        instance = rows_to_instance(
            company_db,
            {"employee": [{"eid": 1, "ename": "Ann", "did": 99}]},
        )
        assert any("keyref" in str(v) for v in validate(instance, schema))


class TestClipOverRelational:
    def test_mapping_over_converted_relational_schema(self, company_db):
        """Clip works on relational schemas via the canonical encoding."""
        from repro import Transformer
        from repro.core.mapping import ClipMapping
        from repro.xsd.dsl import attr, elem, schema as xschema

        source = to_xml_schema(company_db)
        target = xschema(
            elem(
                "out",
                elem(
                    "dept",
                    "[0..*]",
                    attr("name", STRING),
                    elem("emp", "[0..*]", attr("name", STRING)),
                ),
            )
        )
        clip = ClipMapping(source, target)
        dnode = clip.build("department", "dept", var="d")
        clip.build(
            "employee", "dept/emp", var="e",
            condition="$e.@did = $d.@did", parent=dnode,
        )
        clip.value("department/@dname", "dept/@name")
        clip.value("employee/@ename", "dept/emp/@name")
        instance = rows_to_instance(
            company_db,
            {
                "department": [{"did": 1, "dname": "ICT"}, {"did": 2, "dname": "HR"}],
                "employee": [
                    {"eid": 10, "ename": "Ann", "did": 1},
                    {"eid": 11, "ename": "Bob", "did": 2},
                ],
            },
        )
        out = Transformer(clip)(instance)
        assert [d.attribute("name") for d in out.findall("dept")] == ["ICT", "HR"]
        assert out.findall("dept")[0].findall("emp")[0].attribute("name") == "Ann"
