"""Cross-validation: every valid drawable mapping, through every path.

The flexibility enumerator produces a diverse population of Clip
mappings (plain builders, context nodes, groups, joins, distribution,
full-key grouping) over four different schema pairs.  For *each* valid
candidate, this suite checks that all the independent implementations
of the semantics agree:

* direct tgd executor == generated-XQuery interpreter;
* the mapping survives the JSON document round trip;
* the rendered tgd notation survives its parser;
* the serialized XQuery survives its parser.

That is four round trips × dozens of structurally different mappings —
the broadest single consistency net in the test suite.
"""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.core.tgd import render_tgd
from repro.core.tgd_parser import parse_tgd
from repro.core.validity import check
from repro.errors import ReproError
from repro.executor import execute
from repro.generation import enumerate_candidates
from repro.io import dumps, loads
from repro.scenarios.published import TABLE1_ROWS
from repro.xquery import emit_xquery, parse_xquery, run_query, serialize


def _valid_candidates(example):
    for candidate in enumerate_candidates(
        example.source, example.target, example.value_mappings
    ):
        if not check(candidate.clip).is_valid:
            continue
        try:
            tgd = compile_clip(candidate.clip)
            baseline = execute(tgd, example.witness)
        except ReproError:
            continue
        yield candidate, tgd, baseline


@pytest.mark.parametrize("factory", TABLE1_ROWS, ids=lambda f: f.__name__)
def test_engines_agree_on_every_valid_candidate(factory):
    example = factory()
    count = 0
    for candidate, tgd, baseline in _valid_candidates(example):
        via_xquery = run_query(emit_xquery(tgd), example.witness)
        assert via_xquery == baseline, candidate.description
        count += 1
    assert count > 0


@pytest.mark.parametrize("factory", TABLE1_ROWS, ids=lambda f: f.__name__)
def test_document_roundtrip_for_every_valid_candidate(factory):
    example = factory()
    for candidate, tgd, baseline in _valid_candidates(example):
        if not candidate.clip.has_builders():
            continue  # the no-builder default has no drawable lines to persist
        recovered = loads(dumps(candidate.clip))
        assert execute(compile_clip(recovered), example.witness) == baseline, (
            candidate.description
        )


@pytest.mark.parametrize("factory", TABLE1_ROWS, ids=lambda f: f.__name__)
def test_tgd_notation_roundtrip_for_every_valid_candidate(factory):
    example = factory()
    for candidate, tgd, baseline in _valid_candidates(example):
        reparsed = parse_tgd(
            render_tgd(tgd),
            source_root=example.source.root.name,
            target_root=example.target.root.name,
        )
        assert execute(reparsed, example.witness) == baseline, candidate.description


@pytest.mark.parametrize("factory", TABLE1_ROWS, ids=lambda f: f.__name__)
def test_xquery_text_roundtrip_for_every_valid_candidate(factory):
    example = factory()
    for candidate, tgd, baseline in _valid_candidates(example):
        query_text = serialize(emit_xquery(tgd))
        assert run_query(parse_xquery(query_text), example.witness) == baseline, (
            candidate.description
        )
