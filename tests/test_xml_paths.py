"""Unit tests for the path language over instances."""

from __future__ import annotations

import pytest

from repro.errors import PathError
from repro.xml.model import element
from repro.xml.paths import (
    AttributeStep,
    ChildStep,
    Path,
    TextStep,
    atomize,
    evaluate,
    evaluate_one,
    parse_path,
)


@pytest.fixture
def tree():
    return element(
        "source",
        element(
            "dept",
            element("Proj", element("pname", text="Appliances"), pid=1),
            element("Proj", element("pname", text="Robotics"), pid=2),
        ),
        element("dept", element("Proj", element("pname", text="Brand"), pid=1)),
    )


class TestParsing:
    def test_slash_syntax(self):
        path = parse_path("dept/Proj/@pid")
        assert path.steps == (ChildStep("dept"), ChildStep("Proj"), AttributeStep("pid"))

    def test_dotted_syntax_value_is_text(self):
        path = parse_path("sal.value", dotted=True)
        assert path.steps == (ChildStep("sal"), TextStep())

    def test_text_function_step(self):
        assert parse_path("pname/text()").steps[-1] == TextStep()

    def test_empty_path_is_identity(self):
        assert parse_path("") == Path(())

    def test_rejects_empty_steps(self):
        with pytest.raises(PathError):
            parse_path("dept//Proj")

    def test_rejects_unknown_functions(self):
        with pytest.raises(PathError):
            parse_path("dept/last()")

    def test_rejects_bare_at(self):
        with pytest.raises(PathError):
            parse_path("dept/@")

    def test_rejects_non_string(self):
        with pytest.raises(PathError):
            parse_path(42)

    def test_concat_paths(self):
        joined = parse_path("dept").concat(parse_path("Proj/@pid"))
        assert str(joined) == "dept/Proj/@pid"


class TestEvaluation:
    def test_child_steps_collect_in_document_order(self, tree):
        pids = evaluate(parse_path("dept/Proj/@pid"), tree)
        assert pids == [1, 2, 1]

    def test_text_step_returns_typed_values(self, tree):
        names = evaluate(parse_path("dept/Proj/pname/text()"), tree)
        assert names == ["Appliances", "Robotics", "Brand"]

    def test_missing_attribute_contributes_nothing(self, tree):
        assert evaluate(parse_path("dept/@missing"), tree) == []

    def test_wildcard_step(self, tree):
        assert len(evaluate(parse_path("dept/*"), tree)) == 3

    def test_starting_from_multiple_roots(self, tree):
        depts = tree.findall("dept")
        assert len(evaluate(parse_path("Proj"), depts)) == 3

    def test_step_on_atomic_raises(self, tree):
        with pytest.raises(PathError):
            evaluate(parse_path("dept/Proj/@pid/deeper"), tree)

    def test_evaluate_one_requires_singleton(self, tree):
        proj = tree.findall("dept")[1].findall("Proj")[0]
        assert evaluate_one(parse_path("pname/text()"), proj) == "Brand"
        with pytest.raises(PathError):
            evaluate_one(parse_path("dept"), tree)  # two depts

    def test_empty_path_returns_context(self, tree):
        assert evaluate(Path(()), tree) == [tree]


class TestAtomize:
    def test_elements_contribute_text(self):
        items = [element("e", text=5), 7, element("no-text")]
        assert atomize(items) == [5, 7]
