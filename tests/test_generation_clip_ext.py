"""Unit tests for Clip's generation extension (Section V-B)."""

from __future__ import annotations

from repro.core.compile import compile_clip
from repro.executor import execute
from repro.generation import (
    clip_mapping_from_forest,
    find_general_root,
    generate_clio,
    generate_clip,
    product_tableau,
    skeleton_for_build_node,
)
from repro.scenarios import deptstore, generic


class TestRootGeneralization:
    def test_fig10_activates_a_to_f(self, generic_source, generic_target):
        vms = generic.value_mappings_bd(generic_source, generic_target)
        clio = generate_clio(generic_source, generic_target, vms)
        general = find_general_root(clio)
        assert general is not None
        assert general.source.shorthand() == "{A}"
        assert general.target.shorthand() == "{F}"

    def test_fig10_nested_tgd_matches_paper(self, generic_source, generic_target):
        """The paper's first Section V-B nested expression."""
        vms = generic.value_mappings_bd(generic_source, generic_target)
        result = generate_clip(generic_source, generic_target, vms)
        assert len(result.forest) == 1
        root = result.forest[0]
        assert root.active.skeleton.shorthand() == "{A} -> {F}"
        assert len(root.children) == 2
        text = str(result.tgd)
        assert text.startswith("∀ a ∈ ROOT.A →")
        assert "[∀ b ∈ a.B →" in text
        assert "[∀ d ∈ a.D →" in text
        assert text.count("∃ f′ ∈ TROOT.F") == 1  # F built once, at the root

    def test_fig10_abd_product_case(self, generic_source, generic_target):
        """The paper's second walkthrough: ABD → FG nests under A → F and
        computes the Cartesian product with respect to the A values."""
        vms = generic.value_mappings_bd(generic_source, generic_target)
        abd = product_tableau(
            generic_source,
            [generic_source.element("A/B"), generic_source.element("A/D")],
        )
        result = generate_clip(
            generic_source, generic_target, vms, extra_source_tableaux=[abd]
        )
        assert len(result.forest) == 1
        (child,) = result.forest[0].children
        assert {e.name for e in child.active.skeleton.source.generators} == {"A", "B", "D"}
        out = execute(result.tgd, generic.sample_instance())
        # A1: 2 Bs × 1 D = 2 Gs; A2: 1 B × 2 Ds = 2 Gs — per-A products.
        fs = out.findall("F")
        assert [len(f.findall("G")) for f in fs] == [2, 2]

    def test_generated_output_preserves_containment(self, generic_source, generic_target):
        """Contrast with Clio's flat mappings: one F per A, with both
        G kinds inside."""
        vms = generic.value_mappings_bd(generic_source, generic_target)
        result = generate_clip(generic_source, generic_target, vms)
        out = execute(result.tgd, generic.sample_instance())
        assert len(out.findall("F")) == 2
        first = out.findall("F")[0]
        assert len(first.findall("G")) == 3  # 2 Bs + 1 D of the first A

    def test_no_generalization_when_none_exists(self, source_schema):
        """A single mapping with nothing above it stays as-is."""
        target = deptstore.target_schema_projemp()
        from repro.core.mapping import ValueMapping

        vms = [
            ValueMapping(
                [source_schema.value("dept/Proj/pname/value")],
                target.value("project-emp/@pname"),
            )
        ]
        clio = generate_clio(source_schema, target, vms)
        result = generate_clip(source_schema, target, vms)
        # target {project-emp} has no proper subset tableau → no new root.
        assert len(result.forest) == len(clio.forest) == 1


class TestBuildNodeSkeletons:
    def test_build_node_matches_skeleton(self):
        """'Clip's build nodes correspond to Clio's mapping skeletons.'"""
        clip = deptstore.mapping_fig4()
        employee_node = clip.roots[0].children[0]
        skeleton = skeleton_for_build_node(clip, employee_node)
        assert {e.name for e in skeleton.source.generators} >= {"dept", "regEmp"}
        assert {e.name for e in skeleton.target.generators} == {
            "department",
            "employee",
        }

    def test_context_only_root_has_empty_target_tableau(self):
        clip = deptstore.mapping_fig6()
        root = clip.roots[0]
        skeleton = skeleton_for_build_node(clip, root)
        assert skeleton.target.generators == ()

    def test_product_node_creates_new_tableau(self):
        clip = deptstore.mapping_fig6(outer_context=False)
        node = clip.roots[0]
        skeleton = skeleton_for_build_node(clip, node)
        names = {e.name for e in skeleton.source.generators}
        assert names == {"dept", "Proj", "regEmp"}


class TestCptSynthesis:
    def test_forest_to_clip_mapping_roundtrip(self, generic_source, generic_target):
        """'A CPT is a nested mapping': the generated forest converts to
        an explicit Clip diagram computing the same instance."""
        vms = generic.value_mappings_bd(generic_source, generic_target)
        result = generate_clip(generic_source, generic_target, vms)
        clip = clip_mapping_from_forest(
            generic_source, generic_target, vms, result.forest
        )
        assert len(clip.roots) == 1
        assert len(clip.roots[0].children) == 2
        instance = generic.sample_instance()
        direct = execute(result.tgd, instance)
        via_clip = execute(compile_clip(clip, require_valid=False), instance)
        assert via_clip.equals_canonically(direct)
