"""Unit tests for the skeleton matrix, activation and subsumption."""

from __future__ import annotations

from repro.core.mapping import ValueMapping
from repro.generation.skeletons import (
    activate,
    emitted_skeletons,
    skeleton_matrix,
)
from repro.generation.tableaux import compute_tableaux
from repro.scenarios import deptstore, generic


class TestMatrix:
    def test_matrix_is_full_product(self, source_schema, departments_target):
        src = compute_tableaux(source_schema)
        tgt = compute_tableaux(departments_target)
        matrix = skeleton_matrix(src, tgt)
        assert len(matrix) == len(src) * len(tgt)

    def test_fig4_matrix_size_matches_paper(self, source_schema):
        """'there are 3 source tableaux … and 2 target tableaux …
        This creates 6 mapping skeletons.'"""
        target = deptstore.target_schema_fig3()
        src = compute_tableaux(source_schema)
        tgt = compute_tableaux(target)
        # fig3/fig4 target: {department}, {department-employee}, {department-area}
        matrix = skeleton_matrix(src, [t for t in tgt if "area" not in t.shorthand()])
        assert len(matrix) == 6


class TestActivation:
    def test_single_value_mapping_activates_unique_skeleton(self, source_schema):
        """'The entered value correspondence will only match the
        {dept-Proj-regEmp, @pid=@pid} source tableau.'"""
        target = deptstore.target_schema_departments()
        vm = ValueMapping(
            [source_schema.value("dept/regEmp/ename/value")],
            target.value("department/employee/@name"),
        )
        matrix = skeleton_matrix(
            compute_tableaux(source_schema), compute_tableaux(target)
        )
        active = activate(matrix, [vm])
        assert len(active) == 1
        assert active[0].skeleton.source.shorthand() == "{dept-regEmp-Proj, @pid=@pid}"
        assert active[0].skeleton.target.shorthand() == "{department-employee}"

    def test_fig10_activation(self, generic_source, generic_target):
        vms = generic.value_mappings_bd(generic_source, generic_target)
        matrix = skeleton_matrix(
            compute_tableaux(generic_source), compute_tableaux(generic_target)
        )
        active = activate(matrix, vms)
        names = sorted(a.skeleton.shorthand() for a in active)
        assert names == [
            "{A-B-C} -> {F-G}",
            "{A-B} -> {F-G}",
            "{A-D-E} -> {F-G}",
            "{A-D} -> {F-G}",
        ]


class TestEmission:
    def test_implied_skeletons_dropped(self, generic_source, generic_target):
        """{A-B-C} -> {F-G} covers the same vm with a larger tableau:
        implied by {A-B} -> {F-G}."""
        vms = generic.value_mappings_bd(generic_source, generic_target)
        matrix = skeleton_matrix(
            compute_tableaux(generic_source), compute_tableaux(generic_target)
        )
        emitted = emitted_skeletons(activate(matrix, vms))
        names = sorted(a.skeleton.shorthand() for a in emitted)
        assert names == ["{A-B} -> {F-G}", "{A-D} -> {F-G}"]

    def test_subsumed_skeletons_dropped_with_product_tableau(
        self, generic_source, generic_target
    ):
        """With the ABD product tableau, {A-B(×D)} -> {F-G} covers both
        vms and subsumes the one-vm skeletons."""
        from repro.generation.tableaux import product_tableau

        vms = generic.value_mappings_bd(generic_source, generic_target)
        abd = product_tableau(
            generic_source,
            [generic_source.element("A/B"), generic_source.element("A/D")],
        )
        src = compute_tableaux(generic_source) + [abd]
        matrix = skeleton_matrix(src, compute_tableaux(generic_target))
        emitted = emitted_skeletons(activate(matrix, vms), user_source_tableaux=[abd])
        assert len(emitted) == 1
        assert {e.name for e in emitted[0].skeleton.source.generators} == {"A", "B", "D"}
        assert len(emitted[0].value_mappings) == 2

    def test_encompasses_respects_both_sides(self, generic_source, generic_target):
        from repro.generation.skeletons import Skeleton

        vms = generic.value_mappings_bd(generic_source, generic_target)
        src = compute_tableaux(generic_source)
        tgt = compute_tableaux(generic_target)
        f_only = Skeleton(src[1], tgt[0])  # {A-B} -> {F}
        assert not f_only.encompasses(vms[0])  # @att2 lives on G
