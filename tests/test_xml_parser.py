"""Unit tests for parsing XML text into instance trees."""

from __future__ import annotations

import pytest

from repro.errors import XmlParseError
from repro.scenarios import deptstore
from repro.xml.parser import parse_xml


class TestParsing:
    def test_basic_structure(self):
        tree = parse_xml("<a><b x='1'>hi</b><c/></a>")
        assert tree.tag == "a"
        assert tree.find("b").text == "hi"
        assert tree.find("b").attribute("x") == "1"  # untyped without schema
        assert tree.find("c").text is None

    def test_whitespace_only_text_is_ignored(self):
        tree = parse_xml("<a>\n  <b>v</b>\n</a>")
        assert tree.text is None

    def test_namespace_prefixes_are_stripped(self):
        tree = parse_xml('<n:a xmlns:n="urn:x"><n:b n:k="1"/></n:a>')
        assert tree.tag == "a"
        assert tree.find("b").attribute("k") == "1"

    def test_malformed_raises(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a><b></a>")

    def test_entities_unescaped(self):
        tree = parse_xml("<a>x &amp; y</a>")
        assert tree.text == "x & y"


class TestSchemaCoercion:
    def test_values_typed_per_schema(self):
        schema = deptstore.source_schema()
        text = """
        <source>
          <dept>
            <dname>ICT</dname>
            <Proj pid="0001"><pname>Appliances</pname></Proj>
            <regEmp pid="0001"><ename>John Smith</ename><sal>10000</sal></regEmp>
          </dept>
        </source>
        """
        tree = parse_xml(text, schema=schema)
        proj = tree.find("dept").find("Proj")
        emp = tree.find("dept").find("regEmp")
        assert proj.attribute("pid") == 1           # int, not "0001"
        assert emp.find("sal").text == 10000        # int
        assert emp.find("ename").text == "John Smith"

    def test_undeclared_elements_stay_strings(self):
        schema = deptstore.source_schema()
        tree = parse_xml("<source><dept><dname>ICT</dname><bogus>5</bogus></dept></source>", schema=schema)
        assert tree.find("dept").find("bogus").text == "5"

    def test_paper_instance_roundtrip_with_types(self):
        schema = deptstore.source_schema()
        instance = deptstore.source_instance()
        from repro.xml.serialize import to_xml

        assert parse_xml(to_xml(instance), schema=schema) == instance
