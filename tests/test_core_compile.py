"""Unit tests for the Clip → nested-tgd compiler."""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.core.mapping import ClipMapping
from repro.core.tgd import (
    AggregateApp,
    Membership,
    Proj,
    SchemaRoot,
    Var,
)
from repro.errors import CompileError
from repro.scenarios import deptstore
from repro.xsd.dsl import attr, elem, schema
from repro.xsd.types import STRING


class TestSourceGenerators:
    def test_root_anchored_chain_introduces_repeating_intermediates(self, source_schema, departments_target):
        clip = ClipMapping(source_schema, departments_target)
        clip.build("dept/regEmp", "department/employee", var="r")
        (mapping,) = compile_clip(clip).roots
        assert [g.var for g in mapping.source_gens] == ["d", "r"]
        assert str(mapping.source_gens[0].expr) == "source.dept"
        assert str(mapping.source_gens[1].expr) == "d.regEmp"

    def test_context_bound_arc_rebases_on_ancestor_variable(self):
        tgd = compile_clip(deptstore.mapping_fig4())
        child = tgd.roots[0].submappings[0]
        (gen,) = child.source_gens
        assert str(gen.expr) == "d.regEmp"

    def test_non_repeating_intermediates_become_projection_labels(self):
        source = schema(
            elem(
                "s",
                elem("a", "[0..*]", elem("wrap", elem("b", "[0..*]", text=STRING))),
            )
        )
        target = schema(elem("t", elem("x", "[0..*]", attr("v", STRING, required=False))))
        clip = ClipMapping(source, target)
        clip.build("a/wrap/b", "x", var="b")
        (mapping,) = compile_clip(clip).roots
        assert [str(g.expr) for g in mapping.source_gens] == ["s.a", "a.wrap.b"]

    def test_same_node_arcs_are_uncorrelated(self):
        """Figure 6 variant: no context node → whole-document product."""
        clip = deptstore.mapping_fig6(join_condition=False, outer_context=False)
        (mapping,) = compile_clip(clip).roots
        assert [g.var for g in mapping.source_gens] == ["d", "p", "d2", "r"]

    def test_group_membership_generator(self):
        tgd = compile_clip(deptstore.mapping_fig7())
        inner = tgd.roots[0].submappings[0]
        assert str(inner.source_gens[0]) == "p2 ∈ p"

    def test_inversion_adds_membership_condition(self):
        tgd = compile_clip(deptstore.mapping_fig8())
        inner = tgd.roots[0].submappings[0]
        memberships = [c for c in inner.where if isinstance(c, Membership)]
        assert len(memberships) == 1

    def test_group_related_arc_correlates_through_common_ancestor(self):
        tgd = compile_clip(deptstore.mapping_fig7())
        inner = tgd.roots[0].submappings[0]
        memberships = [c for c in inner.where if isinstance(c, Membership)]
        assert len(memberships) == 1
        assert str(memberships[0]) == "p2 ∈ d2.Proj"


class TestTargetGenerators:
    def test_unquantified_wrapper_for_unbuilt_ancestors(self):
        tgd = compile_clip(deptstore.mapping_fig3())
        (mapping,) = tgd.roots
        wrapper, built = mapping.target_gens
        assert not wrapper.quantified and not wrapper.distribute
        assert built.quantified

    def test_distribute_when_sibling_builds_the_element(self):
        tgd = compile_clip(deptstore.mapping_fig4(context_arc=False))
        employee_mapping = tgd.roots[1]
        wrapper = employee_mapping.target_gens[0]
        assert wrapper.distribute and not wrapper.quantified

    def test_builder_var_derives_from_arc_variable(self):
        tgd = compile_clip(deptstore.mapping_fig4())
        assert tgd.roots[0].target_gens[0].var == "d'"

    def test_skolem_context_is_bottom_at_cpt_root(self):
        tgd = compile_clip(deptstore.mapping_fig7())
        var, app = tgd.roots[0].skolem
        assert app.context is None
        assert var == "p'"

    def test_skolem_context_lists_ancestor_target_vars(self, source_schema):
        target = schema(
            elem(
                "t",
                elem(
                    "department",
                    "[1..*]",
                    elem("project", "[0..*]", attr("name", STRING, required=False)),
                ),
            )
        )
        clip = ClipMapping(source_schema, target)
        dept_node = clip.build("dept", "department", var="d")
        clip.group("dept/Proj", "department/project", var="p",
                   by=["$p.pname.value"], parent=dept_node)
        tgd = compile_clip(clip)
        _, app = tgd.roots[0].submappings[0].skolem
        assert app.context == ("d'",)


class TestAssignments:
    def test_driver_attachment(self):
        tgd = compile_clip(deptstore.mapping_fig5())
        project_level = tgd.roots[0].submappings[0]
        (assignment,) = project_level.assignments
        assert str(assignment) == "p′.@name = p.pname.value"

    def test_aggregate_assignment_scopes_to_driver_variable(self):
        tgd = compile_clip(deptstore.mapping_fig9())
        assignments = tgd.roots[0].assignments
        aggregate = assignments[1].value
        assert isinstance(aggregate, AggregateApp)
        assert str(aggregate) == "count(d.Proj)"

    def test_functions_declared_once_in_order(self):
        tgd = compile_clip(deptstore.mapping_fig9())
        assert tgd.functions == ("count", "avg")

    def test_deep_assignment_projects_through_singletons(self, source_schema):
        target = schema(
            elem(
                "t",
                elem(
                    "D",
                    "[0..*]",
                    elem("E", attr("att5", STRING, required=False)),
                ),
            )
        )
        clip = ClipMapping(source_schema, target)
        clip.build("dept", "D", var="d")
        clip.value("dept/dname/value", "D/E/@att5")
        (mapping,) = compile_clip(clip).roots
        (assignment,) = mapping.assignments
        assert str(assignment.target) == "d′.E.@att5"


class TestDefaultCompilation:
    def test_no_builders_builds_deepest_repeating_target_only(self, source_schema, departments_target):
        clip = ClipMapping(source_schema, departments_target)
        clip.value("dept/regEmp/ename/value", "department/employee/@name")
        tgd = compile_clip(clip)
        (mapping,) = tgd.roots
        gens = mapping.target_gens
        assert [g.quantified for g in gens] == [False, True]
        assert [g.var for g in mapping.source_gens] == ["d", "r"]

    def test_no_builders_merges_mappings_with_same_iteration(self, source_schema):
        target = deptstore.target_schema_projemp()
        clip = ClipMapping(source_schema, target)
        clip.value("dept/Proj/pname/value", "project-emp/@pname")
        clip.value("dept/Proj/pname/value", "project-emp/@ename")
        tgd = compile_clip(clip)
        assert len(tgd.roots) == 1
        assert len(tgd.roots[0].assignments) == 2

    def test_whole_document_aggregate_without_builders(self, source_schema):
        target = schema(elem("t", elem("stats", attr("total", STRING, required=False))))
        clip = ClipMapping(source_schema, target)
        clip.value_aggregate("count", "dept/regEmp", "stats/@total")
        tgd = compile_clip(clip)
        (mapping,) = tgd.roots
        assert mapping.source_gens == ()
        (assignment,) = mapping.assignments
        assert str(assignment.value) == "count(source.dept.regEmp)"


class TestUndrivenAggregates:
    def test_aggregate_without_driver_goes_to_document_scope(self, source_schema):
        target = schema(
            elem(
                "t",
                elem("x", "[0..*]", attr("n", STRING, required=False)),
                elem("stats", attr("total", STRING, required=False)),
            )
        )
        clip = ClipMapping(source_schema, target)
        clip.build("dept", "x", var="d")
        clip.value("dept/dname/value", "x/@n")
        clip.value_aggregate("count", "dept/regEmp", "stats/@total")
        tgd = compile_clip(clip)
        assert len(tgd.roots) == 2
        doc_level = tgd.roots[1]
        assert doc_level.source_gens == ()
        assert str(doc_level.assignments[0].value) == "count(source.dept.regEmp)"


class TestErrors:
    def test_condition_with_unknown_variable_fails_compile(self, source_schema, departments_target):
        clip = ClipMapping(source_schema, departments_target)
        clip.build("dept", "department", var="d", condition="$zz.dname.value = 'x'")
        with pytest.raises(CompileError):
            compile_clip(clip, require_valid=False)

    def test_undriven_plain_value_mapping_fails_compile(self, source_schema):
        target = schema(
            elem(
                "t",
                elem("x", "[0..*]", attr("n", STRING, required=False)),
                elem("y", "[0..*]", attr("m", STRING, required=False)),
            )
        )
        clip = ClipMapping(source_schema, target)
        clip.build("dept", "x", var="d")
        clip.value("dept/dname/value", "y/@m")
        with pytest.raises(CompileError):
            compile_clip(clip, require_valid=False)
