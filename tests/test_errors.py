"""Tests for the exception hierarchy and error ergonomics."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "XmlError",
            "XmlParseError",
            "PathError",
            "SchemaError",
            "SchemaParseError",
            "ValidationError",
            "MappingError",
            "InvalidMappingError",
            "CompileError",
            "ExecutionError",
            "GenerationError",
            "XQueryError",
            "XQueryTypeError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_sub_hierarchies(self):
        assert issubclass(errors.XmlParseError, errors.XmlError)
        assert issubclass(errors.SchemaParseError, errors.SchemaError)
        assert issubclass(errors.ValidationError, errors.SchemaError)
        assert issubclass(errors.InvalidMappingError, errors.MappingError)
        assert issubclass(errors.CompileError, errors.MappingError)
        assert issubclass(errors.XQueryTypeError, errors.XQueryError)

    def test_one_except_clause_catches_the_world(self):
        from repro.xml.parser import parse_xml

        with pytest.raises(errors.ReproError):
            parse_xml("<broken")


class TestPayloads:
    def test_validation_error_carries_violations(self):
        from repro.scenarios import deptstore
        from repro.xml.model import element
        from repro.xsd.validate import validate

        with pytest.raises(errors.ValidationError) as excinfo:
            validate(element("source"), deptstore.source_schema(), raise_on_error=True)
        assert excinfo.value.violations
        assert "dept" in str(excinfo.value)

    def test_invalid_mapping_error_carries_report(self):
        from repro.core.compile import compile_clip
        from repro.core.mapping import ClipMapping
        from repro.scenarios import deptstore
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import STRING

        target = schema(elem("t", elem("one", attr("n", STRING, required=False))))
        clip = ClipMapping(deptstore.source_schema(), target)
        clip.build("dept", "one", var="d")
        with pytest.raises(errors.InvalidMappingError) as excinfo:
            compile_clip(clip)
        assert excinfo.value.report.by_rule("SAFE_BUILDER")
        assert "SAFE_BUILDER" in str(excinfo.value)
