"""Tests for schema-driven random instance generation."""

from __future__ import annotations

import pytest

from repro.scenarios import deptstore, generic
from repro.xsd.generate import GeneratorSpec, random_instance
from repro.xsd.validate import validate


SCHEMAS = {
    "deptstore-source": deptstore.source_schema,
    "departments-target": deptstore.target_schema_departments,
    "projemp-target": deptstore.target_schema_projemp,
    "aggregates-target": deptstore.target_schema_aggregates,
    "generic-source": generic.source_schema,
    "generic-target": generic.target_schema,
}


class TestConformance:
    @pytest.mark.parametrize("name", SCHEMAS, ids=list(SCHEMAS))
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_generated_instances_validate(self, name, seed):
        schema = SCHEMAS[name]()
        instance = random_instance(schema, GeneratorSpec(seed=seed))
        assert validate(instance, schema) == [], name


class TestDeterminism:
    def test_same_seed_same_instance(self):
        schema = deptstore.source_schema()
        assert random_instance(schema, GeneratorSpec(seed=9)) == random_instance(
            schema, GeneratorSpec(seed=9)
        )

    def test_different_seeds_differ(self):
        schema = deptstore.source_schema()
        assert random_instance(schema, GeneratorSpec(seed=1)) != random_instance(
            schema, GeneratorSpec(seed=2)
        )


class TestBounds:
    def test_max_repeat_respected(self):
        schema = deptstore.source_schema()
        instance = random_instance(schema, GeneratorSpec(seed=5, max_repeat=2))
        for dept in instance.findall("dept"):
            assert len(dept.findall("Proj")) <= 2
            assert len(dept.findall("regEmp")) <= 2

    def test_optional_probability_zero_drops_optionals(self):
        schema = deptstore.source_schema()
        instance = random_instance(
            schema, GeneratorSpec(seed=5, optional_probability=0.0)
        )
        for dept in instance.findall("dept"):
            assert dept.findall("Proj") == []
            assert dept.findall("regEmp") == []

    def test_int_range(self):
        schema = deptstore.source_schema()
        instance = random_instance(
            schema, GeneratorSpec(seed=7, int_range=(5, 9))
        )
        for dept in instance.findall("dept"):
            for emp in dept.findall("regEmp"):
                assert 5 <= emp.find("sal").text <= 9


class TestKeyrefRepair:
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_pids_always_resolve(self, seed):
        schema = deptstore.source_schema()
        instance = random_instance(schema, GeneratorSpec(seed=seed))
        # validate() already checks the keyref; assert it explicitly too.
        referred = {
            p.attribute("pid")
            for d in instance.findall("dept")
            for p in d.findall("Proj")
        }
        for dept in instance.findall("dept"):
            for emp in dept.findall("regEmp"):
                assert emp.attribute("pid") in referred


class TestMappingsOverGeneratedData:
    @pytest.mark.parametrize("seed", range(5))
    def test_engines_agree_on_generated_instances(self, seed):
        from repro.core.compile import compile_clip
        from repro.executor import execute
        from repro.xquery import emit_xquery, run_query

        schema = deptstore.source_schema()
        instance = random_instance(schema, GeneratorSpec(seed=seed))
        for scenario in deptstore.FIGURES:
            tgd = compile_clip(scenario.make_mapping())
            assert execute(tgd, instance) == run_query(emit_xquery(tgd), instance)
