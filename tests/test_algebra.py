"""The mapping algebra as a test oracle: compose, contain, invert.

Three suites over :mod:`repro.algebra`:

* **Composition** — ``compose(m_ab, m_bc)`` must be *byte-identical*
  to sequential two-stage execution, across every engine, both
  optimizer modes and both exec modes, over the seeded corpus's
  ``composition`` axis as well as hand-built mappings.  Outside the
  symbolic fragment ``compose`` must fail loudly with a stable
  ``reason`` tag, never produce a semantically wrong tgd.

* **Containment** — the Calì–Torlone decision procedure must satisfy
  the laws that make it usable as an oracle: reflexivity, transitivity
  along where-conjunct chains, and antisymmetry up to equivalence
  (mutual containment of alpha-renamed mappings proves ``equivalent``).
  The canonical normal form backing it is pinned byte-for-byte as a
  regression anchor for canonicalized plan-cache keys.

* **Inversion** — for the copy-like fragment,
  ``quasi_inverse(m)(m(source))`` must match the independently derived
  containment-predicted core ``predicted_core(m, source)`` byte for
  byte; outside the fragment ``quasi_inverse`` raises
  :class:`~repro.errors.InverseError` with the offending construct.
"""

from __future__ import annotations

import pytest

from repro.algebra import (
    canonical_render,
    compose,
    compose_fingerprint,
    compose_tgds,
    contains,
    core_tgd,
    equivalent,
    in_decidable_fragment,
    predicted_core,
    quasi_inverse,
)
from repro.core.compile import compile_clip
from repro.core.mapping import ClipMapping
from repro.errors import ComposeError, InverseError
from repro.executor.engine import execute
from repro.generation.corpus import generate_corpus
from repro.io import loads
from repro.runtime import PlanCache, eligible_engines, plan_from_tgd
from repro.xml.model import element
from repro.xml.serialize import to_xml
from repro.xsd.dsl import attr, elem, schema
from repro.xsd.types import INT, STRING

_CACHE = PlanCache()


# -- hand-built three-schema chain ------------------------------------------

_SRC_A = schema(
    elem(
        "S",
        elem(
            "dept", "[0..*]", attr("dname", STRING), attr("size", INT),
            elem(
                "emp", "[0..*]", attr("name", STRING),
                elem("sal", text=INT),
            ),
        ),
    )
)
_SRC_B = schema(
    elem(
        "B",
        elem(
            "department", "[0..*]", attr("dn", STRING),
            elem(
                "employee", "[0..*]", attr("ename", STRING),
                elem("pay", text=INT),
            ),
        ),
    )
)
_SRC_C = schema(
    elem(
        "C",
        elem("rich", "[0..*]", attr("who", STRING), attr("unit", STRING)),
    )
)


def _m_ab(*, dept_cond=None, emp_cond=None, dv="d", ev="e") -> ClipMapping:
    m = ClipMapping(_SRC_A, _SRC_B)
    d = m.build("dept", "department", var=dv, condition=dept_cond)
    m.build(
        "dept/emp", "department/employee", var=ev, parent=d,
        condition=emp_cond,
    )
    m.value("dept/@dname", "department/@dn")
    m.value("dept/emp/@name", "department/employee/@ename")
    m.value("dept/emp/sal/value", "department/employee/pay/value")
    return m


def _m_bc(*, cv="x", bv="y", threshold=1000) -> ClipMapping:
    m = ClipMapping(_SRC_B, _SRC_C)
    ctx = m.context("department", var=cv)
    m.build(
        "department/employee", "rich", var=bv, parent=ctx,
        condition=f"${bv}.pay.value > {threshold}",
    )
    m.value("department/employee/@ename", "rich/@who")
    m.value("department/@dn", "rich/@unit")
    return m


def _instance():
    return element(
        "S",
        element(
            "dept",
            element("emp", element("sal", text=1500), name="Ann"),
            element("emp", element("sal", text=900), name="Bob"),
            dname="ICT", size=20,
        ),
        element(
            "dept",
            element("emp", element("sal", text=2000), name="Cid"),
            dname="Sales", size=5,
        ),
    )


# -- composition -------------------------------------------------------------


def test_compose_matches_sequential_on_hand_built_chain():
    m_ab, m_bc = _m_ab(), _m_bc()
    instance = _instance()
    fused = compose(m_ab, m_bc)
    sequential = execute(
        compile_clip(m_bc), execute(compile_clip(m_ab), instance)
    )
    assert to_xml(execute(fused, instance)) == to_xml(sequential)
    assert fused.source_root == "S" and fused.target_root == "C"


def test_compose_root_mismatch_fails_loudly():
    with pytest.raises(ComposeError) as excinfo:
        compose(_m_bc(), _m_ab())
    assert excinfo.value.reason == "root-mismatch"


def test_compose_fingerprint_is_deterministic_and_ordered():
    fp1 = compose_fingerprint("aaa", "bbb")
    assert fp1 == compose_fingerprint("aaa", "bbb")
    assert fp1 != compose_fingerprint("bbb", "aaa")
    assert len(fp1) == 64


#: The corpus's ``composition`` axis carries the second stage in
#: ``params["compose_with"]`` and predicts inlinability per shape.
_COMPOSE_CASES = [
    case
    for case in generate_corpus(23, 27, axes=("composition",))
]


def _sequential(case, second):
    first_plan = _CACHE.get_or_compile(case.mapping, "tgd", optimize=True)
    second_plan = _CACHE.get_or_compile(second, "tgd", optimize=True)
    return second_plan(first_plan(case.instance))


def test_corpus_compose_predictions_hold():
    inlined = fallbacks = 0
    for case in _COMPOSE_CASES:
        second = loads(case.params["compose_with"])
        try:
            compose(case.mapping, second)
        except ComposeError as exc:
            assert not case.params["expect_inlined"], (
                f"{case.case_id}: compose declined ({exc.reason}) where "
                "the corpus predicted inlining"
            )
            fallbacks += 1
        else:
            assert case.params["expect_inlined"], (
                f"{case.case_id}: compose inlined where the corpus "
                "predicted a fallback"
            )
            inlined += 1
    assert inlined and fallbacks, "corpus must exercise both outcomes"


@pytest.mark.parametrize("optimize", [True, False])
@pytest.mark.parametrize("exec_mode", ["interp", "codegen"])
def test_corpus_compose_byte_identity_tgd_modes(optimize, exec_mode):
    """The fused one-pass plan serializes byte-identically to the
    sequential two-stage pipeline under every tgd evaluation strategy."""
    checked = 0
    for case in _COMPOSE_CASES:
        if not case.params["expect_inlined"]:
            continue
        second = loads(case.params["compose_with"])
        fused = compose(case.mapping, second)
        plan = plan_from_tgd(
            fused, "tgd", optimize=optimize, exec_mode=exec_mode,
        )
        assert to_xml(plan.run(case.instance)) == to_xml(
            _sequential(case, second)
        ), f"{case.case_id}: fused {exec_mode}/opt={optimize} diverges"
        checked += 1
    assert checked


def test_corpus_compose_byte_identity_across_engines():
    """The fused tgd is an ordinary tgd: the XQuery interpreter must
    reproduce it byte-for-byte, and XSLT canonically where eligible."""
    xquery_checked = xslt_checked = 0
    for case in _COMPOSE_CASES:
        if not case.params["expect_inlined"]:
            continue
        second = loads(case.params["compose_with"])
        fused = compose(case.mapping, second)
        sequential = _sequential(case, second)
        via_xquery = plan_from_tgd(fused, "xquery").run(case.instance)
        assert to_xml(via_xquery) == to_xml(sequential), (
            f"{case.case_id}: fused plan diverges under XQuery"
        )
        xquery_checked += 1
        if "xslt" in eligible_engines(fused):
            via_xslt = plan_from_tgd(fused, "xslt").run(case.instance)
            assert sequential.equals_canonically(via_xslt), (
                f"{case.case_id}: fused plan diverges under XSLT"
            )
            xslt_checked += 1
    assert xquery_checked and xslt_checked


def test_compose_grouping_second_stage_declines_with_reason():
    m_bc = ClipMapping(_SRC_B, _SRC_C)
    m_bc.group(
        "department/employee", "rich", var="w", by=["$w.@ename"],
    )
    m_bc.value("department/employee/@ename", "rich/@who")
    with pytest.raises(ComposeError) as excinfo:
        compose(_m_ab(), m_bc)
    assert excinfo.value.reason
    assert isinstance(excinfo.value.reason, str)


# -- containment -------------------------------------------------------------


def test_containment_reflexivity_over_corpus():
    for case in generate_corpus(5, 18, axes=("deep-cpt", "inversion", "fanout-join")):
        if in_decidable_fragment(case.mapping):
            assert contains(case.mapping, case.mapping) is True, case.case_id
            assert equivalent(case.mapping, case.mapping) is True, case.case_id


def test_containment_transitivity_along_where_chains():
    loose = _m_ab()
    mid = _m_ab(emp_cond="$e.sal.value > 1000")
    tight = _m_ab(
        dept_cond="$d.@size > 10", emp_cond="$e.sal.value > 1000"
    )
    assert contains(loose, mid) is True
    assert contains(mid, tight) is True
    # Transitivity: the chain's endpoints compare directly.
    assert contains(loose, tight) is True
    # And properly: the reverse directions are not proven.
    assert contains(tight, mid) is not True
    assert contains(mid, loose) is not True


def test_containment_antisymmetry_up_to_equivalence():
    m1 = _m_ab(emp_cond="$e.sal.value > 1000")
    m2 = _m_ab(emp_cond="$q.sal.value > 1000", dv="p", ev="q")
    assert contains(m1, m2) is True
    assert contains(m2, m1) is True
    assert equivalent(m1, m2) is True
    # Alpha-renaming is invisible to the canonical normal form.
    assert canonical_render(compile_clip(m1)) == canonical_render(
        compile_clip(m2)
    )


def test_containment_answers_unknown_outside_fragment():
    grouped = ClipMapping(_SRC_B, _SRC_C)
    grouped.group("department/employee", "rich", var="w", by=["$w.@ename"])
    grouped.value("department/employee/@ename", "rich/@who")
    assert not in_decidable_fragment(grouped)
    other = _m_bc()
    assert contains(grouped, other) is None
    assert contains(other, grouped) is None
    # ...but alpha-equivalence is still recognized canonically.
    renamed = ClipMapping(_SRC_B, _SRC_C)
    renamed.group("department/employee", "rich", var="v", by=["$v.@ename"])
    renamed.value("department/employee/@ename", "rich/@who")
    assert equivalent(grouped, renamed) is True


def test_canonical_render_pinned():
    """The canonical normal form is a cache-key contract: variables
    alpha-renamed to ``c0, c1, …`` in traversal order, where-conjuncts
    sorted, everything else in document order.  Pinned byte-for-byte —
    changing this changes every canonicalized plan-cache key."""
    rendered = canonical_render(
        compile_clip(_m_ab(emp_cond="$e.sal.value > 1000"))
    )
    assert rendered == (
        "source=S\n"
        "target=B\n"
        "∀ c0 ∈ S.dept →\n"
        "  ∃ c1 ∈ B.department |\n"
        "    c1.@dn = c0.@dname,\n"
        "    [∀ c2 ∈ c0.emp | c2.sal.value > 1000 →\n"
        "      ∃ c3 ∈ c1.employee |\n"
        "        c3.@ename = c2.@name,\n"
        "        c3.pay.value = c2.sal.value]"
    )


# -- inversion ---------------------------------------------------------------


def test_quasi_inverse_round_trip_matches_predicted_core():
    m = _m_ab(emp_cond="$e.sal.value > 1000")
    instance = _instance()
    target = execute(compile_clip(m), instance)
    recovered = execute(compile_clip(quasi_inverse(m)), target)
    assert to_xml(recovered) == to_xml(predicted_core(m, instance))


def test_quasi_inverse_round_trip_over_corpus():
    for case in generate_corpus(31, 18, axes=("round-trip",)):
        target = execute(compile_clip(case.mapping), case.instance)
        inverse = quasi_inverse(case.mapping)
        recovered = execute(compile_clip(inverse), target)
        assert to_xml(recovered) == to_xml(
            predicted_core(case.mapping, case.instance)
        ), case.case_id


def test_quasi_inverse_rejects_grouping():
    grouped = ClipMapping(_SRC_B, _SRC_C)
    grouped.group("department/employee", "rich", var="w", by=["$w.@ename"])
    grouped.value("department/employee/@ename", "rich/@who")
    with pytest.raises(InverseError) as excinfo:
        quasi_inverse(grouped)
    assert excinfo.value.reason == "grouping"
    with pytest.raises(InverseError):
        core_tgd(grouped)


def test_core_tgd_is_source_to_source():
    m = _m_ab()
    core = core_tgd(m)
    assert core.source_root == core.target_root == "S"
    # An unfiltered copy-like mapping transports the mapped attributes
    # of every row: the core keeps both employees of both departments.
    core_doc = execute(core, _instance())
    assert len(core_doc.children) == 2
    assert sum(len(d.children) for d in core_doc.children) == 3


# -- the fluent surface ------------------------------------------------------


def test_transformer_compose_inlined_byte_identity():
    from repro import ComposedTransformer, Transformer

    first = Transformer(_m_ab())
    second = Transformer(_m_bc())
    composed = first.compose(second)
    assert isinstance(composed, ComposedTransformer)
    assert composed.mode == "inlined"
    instance = _instance()
    assert to_xml(composed(instance)) == to_xml(second(first(instance)))
    from repro.runtime.plan import fingerprint as structural_fingerprint

    assert composed.fingerprint == compose_fingerprint(
        structural_fingerprint(
            composed.first.mapping, composed.engine,
            optimize=composed.first.optimize,
            exec_mode=composed.first.exec_mode,
        ),
        structural_fingerprint(
            composed.second.mapping, composed.engine,
            optimize=composed.second.optimize,
            exec_mode=composed.second.exec_mode,
        ),
    )


def test_transformer_compose_sequential_fallback():
    from repro import Transformer

    grouped = ClipMapping(_SRC_B, _SRC_C)
    grouped.group("department/employee", "rich", var="w", by=["$w.@ename"])
    grouped.value("department/employee/@ename", "rich/@who")
    composed = Transformer(_m_ab()).compose(grouped)
    assert composed.mode == "sequential"
    assert composed.fallback_reason
    instance = _instance()
    expected = Transformer(grouped)(Transformer(_m_ab())(instance))
    assert to_xml(composed(instance)) == to_xml(expected)
    with pytest.raises(ComposeError):
        composed.plan


def test_pipeline_fusion_byte_identity():
    from repro.pipeline import Pipeline

    stages = [_m_ab(), _m_bc()]
    fused = Pipeline(stages, fuse=True)
    plain = Pipeline(stages)
    assert fused.fused_groups == [[0, 1]]
    instance = _instance()
    assert to_xml(fused.run(instance)) == to_xml(plain.run(instance))
