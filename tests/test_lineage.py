"""Tests for lineage and impact analysis."""

from __future__ import annotations

from repro.core.compile import compile_clip
from repro.lineage import (
    impact_of_source,
    impact_of_target,
    lineage,
    render_lineage,
)
from repro.scenarios import deptstore


def _entries(fig):
    return lineage(compile_clip(deptstore.scenario(fig).make_mapping()))


class TestLineageEntries:
    def test_simple_copy(self):
        entries = _entries("fig3")
        (entry,) = entries
        assert entry.target_path == "target/department/employee/@name"
        assert entry.source_paths == ("source/dept/regEmp/ename/text()",)
        assert entry.via == "copy"
        assert entry.conditions == ("source/dept/regEmp/sal/text()",)

    def test_iteration_context(self):
        (entry,) = _entries("fig3")
        assert entry.iteration == ("source/dept", "source/dept/regEmp")

    def test_nested_levels_accumulate_iteration(self):
        entries = _entries("fig4")
        (entry,) = entries
        assert entry.iteration == ("source/dept", "source/dept/regEmp")

    def test_join_conditions_reported(self):
        entries = _entries("fig6")
        by_target = {e.target_path: e for e in entries}
        pname = by_target["target/project-emp/@pname"]
        assert "source/dept/Proj/@pid" in pname.conditions
        assert "source/dept/regEmp/@pid" in pname.conditions

    def test_grouping_key_reported(self):
        entries = _entries("fig7")
        group_entries = [e for e in entries if e.via == "group-by"]
        (entry,) = group_entries
        assert entry.target_path == "target/project"
        assert entry.source_paths == ("source/dept/Proj/pname/text()",)

    def test_aggregates_tagged(self):
        entries = _entries("fig9")
        by_target = {e.target_path: e for e in entries}
        assert by_target["target/department/@numProj"].via == "<<count>>"
        assert by_target["target/department/@avg-sal"].via == "<<avg>>"
        assert by_target["target/department/@avg-sal"].source_paths == (
            "source/dept/regEmp/sal/text()",
        )


class TestImpactAnalysis:
    def test_source_change_impact(self):
        tgd = compile_clip(deptstore.mapping_fig5())
        affected = impact_of_source(tgd, "source/dept/Proj")
        targets = {e.target_path for e in affected}
        assert "target/department/project/@name" in targets
        assert "target/department/employee/@name" not in targets

    def test_source_change_impact_through_conditions(self):
        """Changing sal affects the employee mapping even though sal is
        never copied: it guards the filter."""
        tgd = compile_clip(deptstore.mapping_fig4())
        affected = impact_of_source(tgd, "source/dept/regEmp/sal")
        assert {e.target_path for e in affected} == {
            "target/department/employee/@name"
        }

    def test_target_impact(self):
        tgd = compile_clip(deptstore.mapping_fig5())
        entries = impact_of_target(tgd, "target/department/employee")
        assert len(entries) == 1
        assert entries[0].source_paths == ("source/dept/regEmp/ename/text()",)

    def test_unrelated_paths_not_affected(self):
        tgd = compile_clip(deptstore.mapping_fig5())
        assert impact_of_source(tgd, "source/nothing") == []
        assert impact_of_target(tgd, "target/nothing") == []


class TestRendering:
    def test_report_mentions_guards_and_iteration(self):
        text = render_lineage(_entries("fig3"))
        assert "<=[copy]=" in text
        assert "guarded by: source/dept/regEmp/sal/text()" in text
        assert "per: source/dept × source/dept/regEmp" in text

    def test_empty_report(self):
        assert render_lineage([]) == ""
