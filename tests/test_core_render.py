"""Tests for the Clip diagram renderer."""

from __future__ import annotations

from repro.core.render import render_build_node, render_mapping, render_value_mapping
from repro.scenarios import deptstore


class TestValueMappingRendering:
    def test_plain_copy(self):
        clip = deptstore.mapping_fig3()
        text = render_value_mapping(clip.value_mappings[0])
        assert text == "dept/regEmp/ename/value ──> department/employee/@name"

    def test_aggregate_tag(self):
        clip = deptstore.mapping_fig9()
        text = render_value_mapping(clip.value_mappings[1])
        assert "<<count>>" in text
        assert text.startswith("dept/Proj ──>")

    def test_scalar_tag(self):
        from repro.core.functions import CONCAT

        clip = deptstore.mapping_fig5()
        vm = clip.value(
            ["dept/dname/value", "dept/Proj/pname/value"],
            "department/project/@name",
            function=CONCAT,
        )
        assert "[concat]" in render_value_mapping(vm)


class TestBuildNodeRendering:
    def test_builder_arrow_and_variable(self):
        clip = deptstore.mapping_fig4()
        lines = render_build_node(clip.roots[0])
        assert lines[0] == "[$d:dept] ══> department"

    def test_context_arc_indents_children(self):
        clip = deptstore.mapping_fig4()
        lines = render_build_node(clip.roots[0])
        assert lines[1].startswith("  [$r:dept/regEmp]")

    def test_condition_on_own_line(self):
        clip = deptstore.mapping_fig3()
        lines = render_build_node(clip.roots[0])
        assert lines[1].strip() == "| $r.sal.value > 11000"

    def test_group_label(self):
        clip = deptstore.mapping_fig7()
        lines = render_build_node(clip.roots[0])
        assert "group-by { $p.pname.value }" in lines[0]

    def test_context_only_marker(self):
        clip = deptstore.mapping_fig6()
        lines = render_build_node(clip.roots[0])
        assert "(context only)" in lines[0]


class TestFullDiagram:
    def test_sections_present(self):
        text = render_mapping(deptstore.mapping_fig7())
        for section in ("SOURCE", "TARGET", "BUILDERS", "VALUE MAPPINGS"):
            assert section in text

    def test_mapping_without_builders(self):
        from repro.core.mapping import ClipMapping

        clip = ClipMapping(
            deptstore.source_schema(), deptstore.target_schema_departments()
        )
        clip.value("dept/regEmp/ename/value", "department/employee/@name")
        text = render_mapping(clip)
        assert "default minimum-cardinality generation" in text

    def test_mapping_without_value_mappings(self):
        from repro.core.mapping import ClipMapping

        clip = ClipMapping(
            deptstore.source_schema(), deptstore.target_schema_departments()
        )
        clip.build("dept", "department", var="d")
        assert "(none)" in render_mapping(clip)
