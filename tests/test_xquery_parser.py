"""Tests for the XQuery-subset parser (text → AST)."""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.errors import XQueryError
from repro.scenarios import deptstore
from repro.xquery import emit_xquery, parse_xquery, run_query, serialize
from repro.xquery import ast


class TestExpressions:
    def test_literals(self):
        assert parse_xquery('"hello"') == ast.StringLit("hello")
        assert parse_xquery("42") == ast.NumberLit(42)
        assert parse_xquery("-3.5") == ast.NumberLit(-3.5)
        assert parse_xquery("true()") == ast.BoolLit(True)

    def test_escaped_quotes_in_strings(self):
        assert parse_xquery('"say ""hi"""') == ast.StringLit('say "hi"')

    def test_variable_and_path(self):
        assert parse_xquery("$d") == ast.VarRef("d")
        parsed = parse_xquery("$d/regEmp/sal/text()")
        assert parsed == ast.path(ast.VarRef("d"), "regEmp", "sal", "text()")

    def test_root_path(self):
        parsed = parse_xquery("source/dept/Proj/@pid")
        assert parsed == ast.path(ast.DocRoot(), "source", "dept", "Proj", "@pid")

    def test_comparison(self):
        parsed = parse_xquery("$r/sal/text() > 11000")
        assert isinstance(parsed, ast.ComparisonExpr)
        assert parsed.op == ">"

    def test_and_chain(self):
        parsed = parse_xquery("$a/@x = 1 and $b/@y = 2")
        assert isinstance(parsed, ast.AndExpr)
        assert len(parsed.items) == 2

    def test_some_satisfies_is(self):
        parsed = parse_xquery("some $m in $d/Proj satisfies $m is $p")
        assert isinstance(parsed, ast.SomeExpr)
        assert isinstance(parsed.condition, ast.IsExpr)

    def test_function_calls(self):
        parsed = parse_xquery("count($d/Proj)")
        assert parsed == ast.FunctionCall(
            "count", (ast.path(ast.VarRef("d"), "Proj"),)
        )
        parsed = parse_xquery('concat("a", $d/dname/text())')
        assert parsed.name == "concat" and len(parsed.args) == 2

    def test_arithmetic_precedence(self):
        parsed = parse_xquery("1 + 2 * 3")
        assert isinstance(parsed, ast.ArithExpr)
        assert parsed.op == "+"
        assert isinstance(parsed.right, ast.ArithExpr)

    def test_sequences(self):
        parsed = parse_xquery("(1, 2, 3)")
        assert isinstance(parsed, ast.SequenceExpr)
        assert parse_xquery("()") == ast.SequenceExpr(())
        assert parse_xquery("(1)") == ast.NumberLit(1)


class TestFlwor:
    def test_for_where_return(self):
        text = 'for $d in source/dept where $d/dname/text() = "ICT" return $d'
        parsed = parse_xquery(text)
        assert isinstance(parsed, ast.Flwor)
        kinds = [type(c).__name__ for c in parsed.clauses]
        assert kinds == ["ForClause", "WhereClause"]

    def test_let_clause(self):
        parsed = parse_xquery("let $n := count(source/dept) return $n")
        assert isinstance(parsed.clauses[0], ast.LetClause)

    def test_missing_return_rejected(self):
        with pytest.raises(XQueryError):
            parse_xquery("for $d in source/dept")


class TestConstructors:
    def test_self_closing_with_computed_attribute(self):
        parsed = parse_xquery('<employee name="{$r/ename/text()}"/>')
        assert isinstance(parsed, ast.ElementCtor)
        assert parsed.attributes[0].name == "name"
        assert isinstance(parsed.attributes[0].expr, ast.PathExpr)

    def test_nested_content(self):
        parsed = parse_xquery(
            "<target> { for $d in source/dept return <department/> } </target>"
        )
        assert parsed.tag == "target"
        assert isinstance(parsed.children[0], ast.Flwor)

    def test_mismatched_close_tag_rejected(self):
        with pytest.raises(XQueryError):
            parse_xquery("<a> { 1 } </b>")

    def test_unterminated_constructor_rejected(self):
        with pytest.raises(XQueryError):
            parse_xquery("<a> { 1 }")


class TestErrors:
    def test_garbage_rejected(self):
        with pytest.raises(XQueryError):
            parse_xquery("§§§")

    def test_trailing_content_rejected(self):
        with pytest.raises(XQueryError):
            parse_xquery("1 2")

    def test_empty_rejected(self):
        with pytest.raises(XQueryError):
            parse_xquery("")


class TestRoundTrip:
    """The headline property: parse(serialize(emit(tgd))) evaluates like
    the original for every figure of the paper."""

    @pytest.mark.parametrize("fig", [f.figure for f in deptstore.FIGURES])
    def test_emitted_queries_roundtrip(self, fig):
        instance = deptstore.source_instance()
        tgd = compile_clip(deptstore.scenario(fig).make_mapping())
        query = emit_xquery(tgd)
        reparsed = parse_xquery(serialize(query))
        assert run_query(reparsed, instance) == run_query(query, instance)

    def test_serialize_parse_serialize_is_stable(self):
        tgd = compile_clip(deptstore.mapping_fig7())
        text = serialize(emit_xquery(tgd))
        assert serialize(parse_xquery(text)) == text
