"""Tests for the instrumented executor (explain mode)."""

from __future__ import annotations

from repro.core.compile import compile_clip
from repro.executor import execute, explain
from repro.scenarios import deptstore


def _report(fig):
    tgd = compile_clip(deptstore.scenario(fig).make_mapping())
    return explain(tgd, deptstore.source_instance())


class TestResultFidelity:
    def test_explain_builds_the_same_instance(self):
        for scenario in deptstore.FIGURES:
            tgd = compile_clip(scenario.make_mapping())
            instance = deptstore.source_instance()
            assert explain(tgd, instance).result == execute(tgd, instance), (
                scenario.figure
            )


class TestCounters:
    def test_fig3_filter_counts(self):
        report = _report("fig3")
        (level,) = report.levels
        assert level.iterations == 3        # employees above 11000
        assert level.filtered_out == 4      # the other four regEmps
        assert level.elements_built == 3
        assert level.assignments_applied == 3

    def test_fig4_levels_nested(self):
        report = _report("fig4")
        outer, inner = report.levels
        assert outer.depth == 0 and inner.depth == 1
        assert outer.iterations == 2        # two departments
        assert inner.iterations == 3        # three surviving employees
        assert inner.filtered_out == 4

    def test_fig6_join_selectivity(self):
        report = _report("fig6")
        inner = report.levels[1]
        assert inner.iterations == 7        # join pairs
        assert inner.filtered_out == 7      # 14 candidates − 7 survivors
        assert inner.assignments_applied == 14  # two attributes per pair

    def test_fig7_group_count(self):
        report = _report("fig7")
        group_level = report.levels[0]
        assert group_level.groups == 3
        assert group_level.elements_built == 3
        assert group_level.iterations == 4  # four Proj instances grouped

    def test_fig9_aggregate_assignments(self):
        report = _report("fig9")
        (level,) = report.levels
        assert level.assignments_applied == 2 * 4  # 4 assignments × 2 depts

    def test_totals(self):
        report = _report("fig5")
        assert report.total_iterations == 2 + 4 + 7
        assert report.total_elements_built == 2 + 4 + 7


class TestRendering:
    def test_report_rows(self):
        text = _report("fig4").render()
        assert "∀ d ∈ source.dept:" in text
        assert "filtered=4" in text
        assert text.strip().endswith("elements in the result")

    def test_blowup_is_visible(self):
        """The arc-less Figure 4 variant shows its repetition in the
        counters: 3 employees built into each of 2 departments."""
        tgd = compile_clip(deptstore.mapping_fig4(context_arc=False))
        report = explain(tgd, deptstore.source_instance())
        employee_level = report.levels[1]
        assert employee_level.elements_built == 6
