"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io import save
from repro.scenarios import deptstore
from repro.xml.parser import parse_xml
from repro.xml.serialize import to_xml
from repro.xsd.parser import to_xsd


@pytest.fixture
def mapping_file(tmp_path):
    path = tmp_path / "fig4.json"
    save(deptstore.mapping_fig4(), str(path))
    return str(path)


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "source.xml"
    path.write_text(to_xml(deptstore.source_instance()), encoding="utf-8")
    return str(path)


class TestValidate:
    def test_valid_mapping_exits_zero(self, mapping_file, capsys):
        assert main(["validate", mapping_file]) == 0
        assert "valid mapping" in capsys.readouterr().out

    def test_invalid_mapping_exits_one(self, tmp_path, capsys):
        from repro.core.mapping import ClipMapping
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import STRING

        target = schema(elem("t", elem("only", attr("n", STRING, required=False))))
        clip = ClipMapping(deptstore.source_schema(), target)
        clip.build("dept", "only", var="d")
        path = tmp_path / "bad.json"
        save(clip, str(path))
        assert main(["validate", str(path)]) == 1
        assert "SAFE_BUILDER" in capsys.readouterr().out


class TestShowAndXquery:
    def test_show_prints_diagram_and_tgd(self, mapping_file, capsys):
        assert main(["show", mapping_file]) == 0
        out = capsys.readouterr().out
        assert "BUILDERS" in out
        assert "∀ d ∈ source.dept" in out

    def test_xquery_prints_query(self, mapping_file, capsys):
        assert main(["xquery", mapping_file]) == 0
        out = capsys.readouterr().out
        assert "for $r in $d/regEmp" in out


class TestRun:
    def test_run_prints_tree(self, mapping_file, source_file, capsys):
        assert main(["run", mapping_file, source_file]) == 0
        out = capsys.readouterr().out
        assert "@name = Andrew Clarence" in out

    def test_run_writes_xml_output(self, mapping_file, source_file, tmp_path, capsys):
        out_path = tmp_path / "out.xml"
        assert main(["run", mapping_file, source_file, "-o", str(out_path)]) == 0
        result = parse_xml(out_path.read_text(encoding="utf-8"))
        assert result.tag == "target"
        assert len(result.findall("department")) == 2

    def test_run_with_xquery_engine_matches(self, mapping_file, source_file, tmp_path):
        a, b = tmp_path / "a.xml", tmp_path / "b.xml"
        assert main(["run", mapping_file, source_file, "-o", str(a)]) == 0
        assert main(
            ["run", mapping_file, source_file, "-o", str(b), "--engine", "xquery"]
        ) == 0
        assert a.read_text() == b.read_text()

    def test_missing_file_is_a_clean_error(self, mapping_file, capsys):
        assert main(["run", mapping_file, "/nonexistent.xml"]) == 2
        assert "error:" in capsys.readouterr().err


class TestBatch:
    @pytest.fixture
    def source_files(self, tmp_path):
        paths = []
        for index in range(3):
            path = tmp_path / f"src{index}.xml"
            path.write_text(to_xml(deptstore.source_instance()), encoding="utf-8")
            paths.append(str(path))
        return paths

    def test_happy_path_prints_summary(self, mapping_file, source_files, capsys):
        assert main(["batch", mapping_file, *source_files]) == 0
        out = capsys.readouterr().out
        assert "transformed 3 documents" in out
        assert "cache hits=2, misses=1" in out

    def test_output_dir_written(self, mapping_file, source_files, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(
            ["batch", mapping_file, *source_files, "--output-dir", str(out_dir)]
        ) == 0
        produced = sorted(p.name for p in out_dir.iterdir())
        assert produced == ["src0.out.xml", "src1.out.xml", "src2.out.xml"]
        result = parse_xml((out_dir / "src0.out.xml").read_text(encoding="utf-8"))
        assert result.tag == "target"
        assert len(result.findall("department")) == 2

    def test_workers_two_matches_single(self, mapping_file, source_files, tmp_path):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        assert main(
            ["batch", mapping_file, *source_files, "--output-dir", str(a_dir)]
        ) == 0
        assert main(
            ["batch", mapping_file, *source_files, "--output-dir", str(b_dir),
             "--workers", "2"]
        ) == 0
        for name in ("src0.out.xml", "src1.out.xml", "src2.out.xml"):
            assert (a_dir / name).read_text() == (b_dir / name).read_text()

    def test_bad_workers_value_is_a_clean_error(
        self, mapping_file, source_files, capsys
    ):
        assert main(
            ["batch", mapping_file, source_files[0], "--workers", "0"]
        ) == 2
        assert "--workers must be a positive integer" in capsys.readouterr().err

    def test_non_integer_workers_rejected_by_argparse(
        self, mapping_file, source_files
    ):
        with pytest.raises(SystemExit):
            main(["batch", mapping_file, source_files[0], "--workers", "two"])

    def test_metrics_json_content(self, mapping_file, source_files, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["batch", mapping_file, *source_files,
             "--metrics-json", str(metrics_path), "--validate"]
        ) == 0
        doc = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert doc["format"] == "clip-batch-metrics"
        assert doc["version"] == 2
        assert doc["engine"] == "tgd"
        assert doc["workers"] == 1
        assert doc["documents"] == 3
        assert doc["plan_cache"]["hits"] == 2
        assert doc["plan_cache"]["misses"] == 1
        assert doc["validation_violations"] == 0
        assert set(doc["timings"]) == {
            "compile_seconds", "execute_seconds", "wall_seconds",
        }

    def test_malformed_input_isolated_under_collect(
        self, mapping_file, source_files, tmp_path, dead_letter_dir, capsys
    ):
        """An unparseable input is a per-document failure under
        skip/collect — dead-lettered as raw text — not a batch abort."""
        bad = tmp_path / "bad.xml"
        bad.write_text("<not well formed", encoding="utf-8")
        dlq = dead_letter_dir / "dlq"
        out_dir = tmp_path / "out"
        sources = [source_files[0], str(bad), source_files[1]]
        assert main(
            ["batch", mapping_file, *sources,
             "--error-policy", "collect",
             "--dead-letter-dir", str(dlq),
             "--output-dir", str(out_dir)]
        ) == 0
        captured = capsys.readouterr()
        assert "failed: " in captured.err and "XmlParseError" in captured.err
        assert sorted(p.name for p in out_dir.iterdir()) == [
            "src0.out.xml", "src1.out.xml",
        ]
        assert (dlq / "dead-letter-00001.xml").read_text(
            encoding="utf-8"
        ) == "<not well formed"
        manifest = json.loads((dlq / "failures.json").read_text(encoding="utf-8"))
        assert [entry["index"] for entry in manifest] == [1]
        assert manifest[0]["error"] == "XmlParseError"

    def test_malformed_input_aborts_under_fail_fast(
        self, mapping_file, source_files, tmp_path, capsys
    ):
        bad = tmp_path / "bad.xml"
        bad.write_text("<not well formed", encoding="utf-8")
        assert main(
            ["batch", mapping_file, source_files[0], str(bad)]
        ) == 2
        assert "malformed XML" in capsys.readouterr().err

    def test_xquery_engine_agrees(self, mapping_file, source_files, tmp_path):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        assert main(
            ["batch", mapping_file, *source_files, "--output-dir", str(a_dir)]
        ) == 0
        assert main(
            ["batch", mapping_file, *source_files, "--output-dir", str(b_dir),
             "--engine", "xquery"]
        ) == 0
        assert (a_dir / "src1.out.xml").read_text() == (
            b_dir / "src1.out.xml"
        ).read_text()


class TestExplainCommand:
    @pytest.fixture
    def join_mapping_file(self, tmp_path):
        path = tmp_path / "fig6.json"
        save(deptstore.mapping_fig6(), str(path))
        return str(path)

    def test_explain_renders_plan_and_counters(
        self, join_mapping_file, source_file, capsys
    ):
        assert main(["explain", join_mapping_file, source_file]) == 0
        out = capsys.readouterr().out
        assert "clip-plan-explain v1 (optimize=on)" in out
        assert "equality join @ r: p.@pid = r.@pid" in out
        assert "hash joins: builds=" in out

    def test_explain_json_document(self, join_mapping_file, source_file, capsys):
        assert main(["explain", join_mapping_file, source_file, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "clip-plan-explain"
        assert doc["version"] == 1
        assert doc["optimize"] is True
        assert doc["totals"]["join_probes"] > 0
        joins = [
            join
            for level in doc["levels"]
            for gen in level["generators"]
            for join in gen["joins"]
        ]
        assert any(join["kind"] == "equality" for join in joins)

    def test_explain_no_optimize_keeps_counters_zero(
        self, join_mapping_file, source_file, capsys
    ):
        assert main(
            ["explain", join_mapping_file, source_file, "--no-optimize"]
        ) == 0
        out = capsys.readouterr().out
        assert "optimize=off" in out
        assert "naive evaluation" in out


class TestNoOptimizeFlag:
    def test_run_no_optimize_is_byte_identical(
        self, mapping_file, source_file, tmp_path
    ):
        a, b = tmp_path / "a.xml", tmp_path / "b.xml"
        assert main(["run", mapping_file, source_file, "-o", str(a)]) == 0
        assert main(
            ["run", mapping_file, source_file, "-o", str(b), "--no-optimize"]
        ) == 0
        assert a.read_text() == b.read_text()

    def test_batch_no_optimize_matches_and_reports(
        self, mapping_file, source_file, tmp_path
    ):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["batch", mapping_file, source_file, "--output-dir", str(a_dir)]
        ) == 0
        assert main(
            ["batch", mapping_file, source_file, "--output-dir", str(b_dir),
             "--no-optimize", "--metrics-json", str(metrics_path)]
        ) == 0
        assert (a_dir / "source.out.xml").read_text() == (
            b_dir / "source.out.xml"
        ).read_text()
        doc = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert doc["plan"] == {"optimize": False, "exec_mode": "interp"}

    def test_batch_metrics_carry_plan_report(
        self, mapping_file, source_file, tmp_path
    ):
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["batch", mapping_file, source_file,
             "--metrics-json", str(metrics_path)]
        ) == 0
        doc = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert doc["plan"]["optimize"] is True
        assert doc["plan"]["exec_mode"] == "interp"
        assert doc["plan"]["levels"]
        assert doc["plan"]["counters"]
        # The document still parses through the v2 metrics reader.
        from repro.runtime import BatchMetrics

        parsed = BatchMetrics.from_json(metrics_path.read_text(encoding="utf-8"))
        assert parsed.plan == doc["plan"]


class TestLineageCommand:
    def test_full_lineage(self, mapping_file, capsys):
        assert main(["lineage", mapping_file]) == 0
        assert "<=[copy]=" in capsys.readouterr().out

    def test_source_impact(self, mapping_file, capsys):
        assert main(["lineage", mapping_file, "--source", "source/dept/regEmp/sal"]) == 0
        out = capsys.readouterr().out
        assert "target/department/employee/@name" in out


class TestSuggest:
    def test_suggest_generates_mapping(self, tmp_path, capsys):
        src = tmp_path / "src.xsd"
        tgt = tmp_path / "tgt.xsd"
        src.write_text(to_xsd(deptstore.source_schema()), encoding="utf-8")
        tgt.write_text(
            to_xsd(deptstore.target_schema_departments()), encoding="utf-8"
        )
        assert main(["suggest", str(src), str(tgt)]) == 0
        out = capsys.readouterr().out
        assert "suggested value mappings:" in out
        assert "generated nested mapping:" in out

    def test_no_matches_above_threshold(self, tmp_path, capsys):
        src = tmp_path / "src.xsd"
        tgt = tmp_path / "tgt.xsd"
        src.write_text(to_xsd(deptstore.source_schema()), encoding="utf-8")
        tgt.write_text(
            to_xsd(deptstore.target_schema_departments()), encoding="utf-8"
        )
        assert main(["suggest", str(src), str(tgt), "--threshold", "0.999"]) == 1


class TestPaperCommands:
    def test_figures_single(self, capsys):
        assert main(["figures", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "@avg-sal = 10875" in out
        assert "matches the paper's printed output: yes" in out

    def test_figures_all(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert out.count("matches the paper's printed output: yes") == len(
            deptstore.FIGURES
        )

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "all rows meet the paper's lower bounds" in capsys.readouterr().out


class TestXsltCommand:
    def test_xslt_prints_stylesheet(self, mapping_file, capsys):
        assert main(["xslt", mapping_file]) == 0
        out = capsys.readouterr().out
        assert '<xsl:template match="/">' in out
        assert '<xsl:for-each select="/source/dept">' in out

    def test_run_with_xslt_engine_matches(self, mapping_file, source_file, tmp_path):
        a, b = tmp_path / "a.xml", tmp_path / "b.xml"
        assert main(["run", mapping_file, source_file, "-o", str(a)]) == 0
        assert main(
            ["run", mapping_file, source_file, "-o", str(b), "--engine", "xslt"]
        ) == 0
        assert a.read_text() == b.read_text()


class TestTraceCli:
    def test_run_trace_json_writes_clip_trace(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        from repro.runtime import TRACE_FORMAT, TRACE_VERSION, Trace

        trace_path = tmp_path / "trace.json"
        out_path = tmp_path / "out.xml"
        assert main(
            ["run", mapping_file, source_file, "-o", str(out_path),
             "--trace-json", str(trace_path)]
        ) == 0
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        assert doc["format"] == TRACE_FORMAT
        assert doc["version"] == TRACE_VERSION
        assert doc["engine"] == "tgd"
        trace = Trace.from_dict(doc)
        for name in ("compile", "prepare", "transform", "execute"):
            assert trace.find(name) is not None, name

    def test_traced_run_output_matches_untraced(
        self, mapping_file, source_file, tmp_path
    ):
        a, b = tmp_path / "a.xml", tmp_path / "b.xml"
        assert main(["run", mapping_file, source_file, "-o", str(a)]) == 0
        assert main(
            ["run", mapping_file, source_file, "-o", str(b),
             "--trace-json", str(tmp_path / "t.json")]
        ) == 0
        assert a.read_text() == b.read_text()

    def _batch_with_trace(self, mapping_file, source_file, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["batch", mapping_file, source_file, source_file,
             "--trace-json", str(trace_path),
             "--metrics-json", str(metrics_path)]
        ) == 0
        return trace_path, metrics_path

    def test_batch_trace_embedded_in_metrics(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        from repro.runtime import BatchMetrics, Trace

        trace_path, metrics_path = self._batch_with_trace(
            mapping_file, source_file, tmp_path
        )
        trace_doc = json.loads(trace_path.read_text(encoding="utf-8"))
        # The metrics v2 parser round-trips the additive trace key and
        # the embedded document equals the standalone file.
        metrics = BatchMetrics.from_json(
            metrics_path.read_text(encoding="utf-8")
        )
        assert metrics.trace == trace_doc
        trace = Trace.from_dict(metrics.trace)
        assert trace.find("batch") is not None
        assert trace.find("doc[0]") is not None
        assert trace.find("doc[1]") is not None

    def test_trace_subcommand_renders_tree(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        trace_path, metrics_path = self._batch_with_trace(
            mapping_file, source_file, tmp_path
        )
        capsys.readouterr()
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "clip-trace v1" in out
        assert "batch" in out and "doc[0]" in out
        # A metrics file works too: the embedded trace is unwrapped.
        assert main(["trace", str(metrics_path)]) == 0
        assert "doc[1]" in capsys.readouterr().out

    def test_trace_subcommand_canonical_is_deterministic(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        trace_path, _ = self._batch_with_trace(
            mapping_file, source_file, tmp_path
        )
        capsys.readouterr()
        assert main(["trace", str(trace_path), "--canonical"]) == 0
        first = capsys.readouterr().out
        trace_path2, _ = self._batch_with_trace(
            mapping_file, source_file, tmp_path
        )
        capsys.readouterr()
        assert main(["trace", str(trace_path2), "--canonical"]) == 0
        assert capsys.readouterr().out == first
        doc = json.loads(first)
        assert doc["format"] == "clip-trace"
        assert "t0" not in json.dumps(doc)

    def test_trace_subcommand_chrome_export(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        trace_path, _ = self._batch_with_trace(
            mapping_file, source_file, tmp_path
        )
        chrome_path = tmp_path / "chrome.json"
        assert main(
            ["trace", str(trace_path), "--chrome", str(chrome_path)]
        ) == 0
        doc = json.loads(chrome_path.read_text(encoding="utf-8"))
        assert doc["traceEvents"]
        assert all(event["ph"] == "X" for event in doc["traceEvents"])

    def test_trace_subcommand_rejects_non_trace_json(
        self, tmp_path, capsys
    ):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"format": "something-else"}', encoding="utf-8")
        assert main(["trace", str(bogus)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_subcommand_rejects_metrics_without_trace(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["batch", mapping_file, source_file,
             "--metrics-json", str(metrics_path)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(metrics_path)]) == 2
        assert "without an embedded trace" in capsys.readouterr().err


class TestRunIncremental:
    def test_incremental_run_matches_full_run(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        prev_target = tmp_path / "prev.xml"
        assert main(
            ["run", mapping_file, source_file, "-o", str(prev_target)]
        ) == 0
        edited = tmp_path / "edited.xml"
        doc = parse_xml((tmp_path / "source.xml").read_text(encoding="utf-8"))
        field = doc.findall("dept")[0].findall("Proj")[0].find("pname")
        field.clear_text()
        field.set_text("Edited via CLI")
        edited.write_text(to_xml(doc), encoding="utf-8")
        full_out = tmp_path / "full.xml"
        assert main(
            ["run", mapping_file, str(edited), "-o", str(full_out)]
        ) == 0
        capsys.readouterr()
        inc_out = tmp_path / "inc.xml"
        assert main([
            "run", mapping_file, str(edited), "-o", str(inc_out),
            "--incremental", source_file, str(prev_target),
        ]) == 0
        assert inc_out.read_text() == full_out.read_text()
        assert "incremental: mode=" in capsys.readouterr().err

    def test_baseline_reports_both_timings_and_checks_identity(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        prev_target = tmp_path / "prev.xml"
        assert main(
            ["run", mapping_file, source_file, "-o", str(prev_target)]
        ) == 0
        capsys.readouterr()
        out = tmp_path / "out.xml"
        assert main([
            "run", mapping_file, source_file, "-o", str(out),
            "--incremental", source_file, str(prev_target), "--baseline",
        ]) == 0
        err = capsys.readouterr().err
        assert "incremental: mode=unchanged" in err
        assert "baseline: full recompute" in err

    def test_incremental_requires_the_tgd_engine(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        prev_target = tmp_path / "prev.xml"
        assert main(
            ["run", mapping_file, source_file, "-o", str(prev_target)]
        ) == 0
        assert main([
            "run", mapping_file, source_file, "--engine", "xquery",
            "--incremental", source_file, str(prev_target),
        ]) == 2
        assert "tgd engine" in capsys.readouterr().err
