"""Property-based tests (hypothesis) for core invariants.

The central property of the reproduction: for any instance of the
paper's source schema, the direct tgd executor and the generated-XQuery
interpreter compute *identical* target instances for every figure's
mapping, and those instances conform to the target schema.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.compile import compile_clip
from repro.core.expr import parse_condition
from repro.executor import execute
from repro.generation import compute_tableaux
from repro.scenarios import deptstore
from repro.xml.model import XmlElement, element
from repro.xml.parser import parse_xml
from repro.xml.serialize import to_xml
from repro.xquery import emit_xquery, run_query
from repro.xsd.parser import parse_xsd, to_xsd
from repro.xsd.render import render_schema
from repro.xsd.validate import validate

# -- strategies ----------------------------------------------------------------

_names = st.sampled_from(
    ["John Smith", "Mark Tane", "Ann", "Bob", "Cid", "Déjà Vu", "X"]
)
_pnames = st.sampled_from(["Appliances", "Robotics", "Brand promotion", "Audio"])
_dnames = st.sampled_from(["ICT", "Marketing", "Sales", "R&D"])
_salaries = st.integers(min_value=0, max_value=40000)


@st.composite
def dept_instances(draw):
    """Random valid instances of the paper's source schema."""
    root = XmlElement("source")
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        dept = element("dept", element("dname", text=draw(_dnames)))
        n_projects = draw(st.integers(min_value=0, max_value=3))
        pids = list(range(1, n_projects + 1))
        for pid in pids:
            dept.append(
                element("Proj", element("pname", text=draw(_pnames)), pid=pid)
            )
        for _ in range(draw(st.integers(min_value=0, max_value=4))):
            if not pids:
                break
            dept.append(
                element(
                    "regEmp",
                    element("ename", text=draw(_names)),
                    element("sal", text=draw(_salaries)),
                    pid=draw(st.sampled_from(pids)),
                )
            )
        root.append(dept)
    return root


@st.composite
def xml_trees(draw, depth=0):
    """Arbitrary small instance trees for model/serialization properties."""
    tag = draw(st.sampled_from(["a", "b", "c", "d"]))
    attrs = draw(
        st.dictionaries(
            st.sampled_from(["x", "y", "z"]),
            st.one_of(
                st.integers(-1000, 1000),
                st.text(
                    alphabet=st.characters(
                        codec="utf-8", exclude_categories=("Cc", "Cs")
                    ),
                    max_size=12,
                ),
            ),
            max_size=3,
        )
    )
    as_leaf = depth >= 2 or draw(st.booleans())
    if as_leaf:
        text = draw(
            st.one_of(
                st.none(),
                st.integers(-1000, 1000),
                st.text(
                    alphabet=st.characters(
                        codec="utf-8", exclude_categories=("Cc", "Cs")
                    ),
                    min_size=1,
                    max_size=12,
                ).filter(lambda s: s.strip() == s and s.strip() != ""),
            )
        )
        return XmlElement(tag, attributes=attrs, text=text)
    children = draw(st.lists(xml_trees(depth=depth + 1), max_size=3))
    return XmlElement(tag, attributes=attrs, children=children)


# -- the headline property -----------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(instance=dept_instances())
def test_engines_agree_on_every_figure_for_random_instances(instance):
    assert validate(instance, deptstore.source_schema()) == []
    for scenario in deptstore.FIGURES:
        clip = scenario.make_mapping()
        tgd = compile_clip(clip)
        direct = execute(tgd, instance)
        via_xquery = run_query(emit_xquery(tgd), instance)
        assert direct == via_xquery, scenario.figure
        # A mapping cannot invent mandatory content: when the (possibly
        # filtered) source side is empty, minimum-occurrence violations
        # are inherent.  Everything else must hold.
        violations = [
            v
            for v in validate(direct, clip.target)
            if "occurs 0 times" not in v.message
        ]
        assert violations == [], scenario.figure


@settings(max_examples=40, deadline=None)
@given(instance=dept_instances())
def test_fig7_groups_partition_the_joined_employees(instance):
    """Grouping invariant: project elements are keyed by distinct pnames
    and each joined employee lands under the project of its own dept."""
    tgd = compile_clip(deptstore.mapping_fig7())
    out = execute(tgd, instance)
    names = [p.attribute("name") for p in out.findall("project")]
    assert len(names) == len(set(names))
    distinct_pnames = {
        p.find("pname").text
        for d in instance.findall("dept")
        for p in d.findall("Proj")
    }
    assert set(names) == distinct_pnames


@settings(max_examples=40, deadline=None)
@given(instance=dept_instances())
def test_fig9_aggregates_match_manual_computation(instance):
    tgd = compile_clip(deptstore.mapping_fig9())
    out = execute(tgd, instance)
    for dept, out_dept in zip(instance.findall("dept"), out.findall("department")):
        assert out_dept.attribute("numProj") == len(dept.findall("Proj"))
        assert out_dept.attribute("numEmps") == len(dept.findall("regEmp"))
        salaries = [e.find("sal").text for e in dept.findall("regEmp")]
        if salaries:
            expected = sum(salaries) / len(salaries)
            if float(expected).is_integer():
                expected = int(expected)
            assert out_dept.attribute("avg-sal") == expected
        else:
            assert not out_dept.has_attribute("avg-sal")


@settings(max_examples=40, deadline=None)
@given(instance=dept_instances())
def test_fig6_join_is_subset_of_cartesian(instance):
    joined = execute(compile_clip(deptstore.mapping_fig6()), instance)
    cartesian = execute(
        compile_clip(deptstore.mapping_fig6(join_condition=False)), instance
    )
    def pairs(root):
        return [
            (p.attribute("pname"), p.attribute("ename"))
            for p in root.findall("project-emp")
        ]
    joined_pairs = pairs(joined)
    cartesian_pairs = pairs(cartesian)
    assert len(joined_pairs) <= len(cartesian_pairs)
    remaining = list(cartesian_pairs)
    for pair in joined_pairs:
        assert pair in remaining
        remaining.remove(pair)


# -- substrate properties --------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(tree=xml_trees())
def test_xml_text_roundtrip_preserves_structure(tree):
    recovered = parse_xml(to_xml(tree))
    # Types flatten to strings without a schema; compare shape and
    # stringified values.
    def shape(node):
        return (
            node.tag,
            tuple(sorted((k, str(v)) for k, v in node.attributes.items())),
            str(node.text) if node.text is not None else None,
            tuple(shape(c) for c in node.children),
        )
    assert shape(recovered) == shape(tree)


@settings(max_examples=60, deadline=None)
@given(tree=xml_trees())
def test_copy_equals_original_and_is_independent(tree):
    clone = tree.copy()
    assert clone == tree
    assert clone.equals_canonically(tree)


@settings(max_examples=60, deadline=None)
@given(tree=xml_trees(), data=st.data())
def test_canonical_equality_is_shuffle_invariant(tree, data):
    if len(tree.children) < 2:
        return
    order = data.draw(st.permutations(range(len(tree.children))))
    shuffled = XmlElement(tree.tag, attributes=tree.attributes, text=tree.text)
    children = list(tree.children)
    for index in order:
        shuffled.append(children[index].copy())
    assert tree.equals_canonically(shuffled)


@settings(max_examples=30, deadline=None)
@given(instance=dept_instances())
def test_schema_coerced_parse_roundtrip(instance):
    schema = deptstore.source_schema()
    assert parse_xml(to_xml(instance), schema=schema) == instance


def test_xsd_roundtrip_for_all_scenario_schemas():
    for factory in (
        deptstore.source_schema,
        deptstore.target_schema_departments,
        deptstore.target_schema_grouped_projects,
    ):
        schema = factory()
        assert render_schema(parse_xsd(to_xsd(schema))) == render_schema(schema)


# -- condition language ------------------------------------------------------------------


_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
_vars = st.sampled_from(["a", "b2", "proj"])
_segments = st.lists(
    st.sampled_from(["sal", "pname", "@pid", "value"]), min_size=1, max_size=3
)


@st.composite
def conditions(draw):
    parts = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        var = draw(_vars)
        segments = ".".join(draw(_segments))
        op = draw(_ops)
        literal = draw(st.integers(-99, 99))
        parts.append(f"${var}.{segments} {op} {literal}")
    return " and ".join(parts)


@settings(max_examples=80, deadline=None)
@given(text=conditions())
def test_condition_parser_roundtrips_through_str(text):
    parsed = parse_condition(text)
    assert str(parse_condition(str(parsed))) == str(parsed)


# -- tableaux ---------------------------------------------------------------------------


def test_tableaux_are_closed_under_repeating_ancestors():
    for schema in (deptstore.source_schema(), deptstore.target_schema_departments()):
        for tableau in compute_tableaux(schema):
            ids = {id(e) for e in tableau.generators}
            for generator in tableau.generators:
                for ancestor in generator.path():
                    if ancestor.is_repeating:
                        assert id(ancestor) in ids
