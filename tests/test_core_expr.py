"""Unit tests for the build-node condition language."""

from __future__ import annotations

import pytest

from repro.core.expr import (
    Comparison,
    Condition,
    Literal,
    VarPath,
    parse_condition,
    parse_value_expr,
)
from repro.errors import MappingError


class TestValueExpr:
    def test_simple_varpath(self):
        assert parse_value_expr("$r.sal.value") == VarPath("r", ("sal", "value"))

    def test_attribute_segment(self):
        assert parse_value_expr("$p.@pid") == VarPath("p", ("@pid",))

    def test_bare_variable(self):
        assert parse_value_expr("$x") == VarPath("x", ())

    def test_requires_dollar(self):
        with pytest.raises(MappingError):
            parse_value_expr("r.sal.value")

    def test_rejects_empty_segments(self):
        with pytest.raises(MappingError):
            parse_value_expr("$r..value")

    def test_str_roundtrips(self):
        assert str(parse_value_expr("$p2.@pid")) == "$p2.@pid"


class TestConditionParsing:
    def test_numeric_filter(self):
        cond = parse_condition("$r.sal.value > 11000")
        (cmp_,) = cond.comparisons
        assert cmp_.op == ">"
        assert cmp_.right == Literal(11000)

    def test_join_condition(self):
        cond = parse_condition("$p.@pid = $r.@pid")
        assert cond.is_join()
        assert cond.variables() == {"p", "r"}

    def test_filter_is_not_join(self):
        assert not parse_condition("$r.sal.value > 11000").is_join()

    def test_conjunction(self):
        cond = parse_condition("$a.x = 1 and $b.y != 'z'")
        assert len(cond.comparisons) == 2
        assert cond.variables() == {"a", "b"}

    def test_string_literals_single_and_double_quotes(self):
        assert parse_condition("$a.n = 'x'").comparisons[0].right == Literal("x")
        assert parse_condition('$a.n = "x"').comparisons[0].right == Literal("x")

    def test_float_and_negative_literals(self):
        assert parse_condition("$a.x >= -2.5").comparisons[0].right == Literal(-2.5)

    def test_boolean_literal(self):
        assert parse_condition("$a.flag = true").comparisons[0].right == Literal(True)

    def test_all_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            cond = parse_condition(f"$a.x {op} 1")
            assert cond.comparisons[0].op == op

    def test_none_means_empty_condition(self):
        cond = parse_condition(None)
        assert not cond

    def test_passthrough_of_parsed_conditions(self):
        cond = parse_condition("$a.x = 1")
        assert parse_condition(cond) is cond

    def test_rejects_garbage(self):
        with pytest.raises(MappingError):
            parse_condition("$a.x ~ 1")

    def test_rejects_truncated_comparison(self):
        with pytest.raises(MappingError):
            parse_condition("$a.x =")

    def test_rejects_missing_and(self):
        with pytest.raises(MappingError):
            parse_condition("$a.x = 1 $b.y = 2")

    def test_rejects_empty(self):
        with pytest.raises(MappingError):
            parse_condition("   ")


class TestComparisonSemantics:
    def test_holds_each_operator(self):
        c = lambda op: Comparison(VarPath("a"), op, Literal(0))
        assert c("=").holds(1, 1) and not c("=").holds(1, 2)
        assert c("!=").holds(1, 2)
        assert c("<").holds(1, 2) and c("<=").holds(2, 2)
        assert c(">").holds(3, 2) and c(">=").holds(2, 2)

    def test_incomparable_types_raise(self):
        with pytest.raises(MappingError):
            Comparison(VarPath("a"), "<", Literal(0)).holds("x", 1)

    def test_unknown_operator_rejected_at_construction(self):
        with pytest.raises(MappingError):
            Comparison(VarPath("a"), "~", Literal(0))

    def test_condition_str(self):
        cond = parse_condition("$p.@pid = $r.@pid and $r.sal.value > 11000")
        assert str(cond) == "$p.@pid = $r.@pid and $r.sal.value > 11000"
