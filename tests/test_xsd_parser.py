"""Unit tests for the XSD subset parser and serializer."""

from __future__ import annotations

import pytest

from repro.errors import SchemaParseError
from repro.scenarios import deptstore, generic
from repro.xsd.parser import parse_xsd, to_xsd
from repro.xsd.render import render_schema
from repro.xsd.types import INT, STRING


SIMPLE = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="library">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="book" minOccurs="0" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="title" type="xs:string"/>
              <xs:element name="year" type="xs:integer" minOccurs="0"/>
            </xs:sequence>
            <xs:attribute name="isbn" type="xs:string" use="required"/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""


class TestParsing:
    def test_structure_and_types(self):
        schema = parse_xsd(SIMPLE)
        book = schema.element("book")
        assert book.cardinality.is_repeating and book.cardinality.is_optional
        assert book.attribute("isbn").required
        assert schema.element("book/title").text_type is STRING
        assert schema.element("book/year").text_type is INT
        assert schema.element("book/year").is_optional

    def test_simple_content_extension(self):
        text = """
        <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r">
            <xs:complexType><xs:sequence>
              <xs:element name="price" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:simpleContent>
                    <xs:extension base="xs:decimal">
                      <xs:attribute name="currency" type="xs:string"/>
                    </xs:extension>
                  </xs:simpleContent>
                </xs:complexType>
              </xs:element>
            </xs:sequence></xs:complexType>
          </xs:element>
        </xs:schema>
        """
        schema = parse_xsd(text)
        price = schema.element("price")
        assert price.text_type is not None
        assert price.attribute("currency") is not None

    def test_key_keyref_pairs(self):
        schema = parse_xsd(to_xsd(deptstore.source_schema()))
        (constraint,) = schema.constraints
        assert constraint.referring.path_string().endswith("regEmp/@pid")
        assert constraint.referred.path_string().endswith("Proj/@pid")

    def test_rejects_non_schema_root(self):
        with pytest.raises(SchemaParseError):
            parse_xsd("<notaschema/>")

    def test_rejects_multiple_globals(self):
        text = (
            '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">'
            '<xs:element name="a" type="xs:string"/>'
            '<xs:element name="b" type="xs:string"/>'
            "</xs:schema>"
        )
        with pytest.raises(SchemaParseError):
            parse_xsd(text)

    def test_rejects_unsupported_particles(self):
        text = (
            '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">'
            '<xs:element name="a"><xs:complexType><xs:choice/>'
            "</xs:complexType></xs:element></xs:schema>"
        )
        with pytest.raises(SchemaParseError):
            parse_xsd(text)

    def test_rejects_malformed_xml(self):
        with pytest.raises(SchemaParseError):
            parse_xsd("<xs:schema")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [
            deptstore.source_schema,
            deptstore.target_schema_departments,
            deptstore.target_schema_fig3,
            deptstore.target_schema_projemp,
            deptstore.target_schema_grouped_projects,
            deptstore.target_schema_aggregates,
            generic.source_schema,
            generic.target_schema,
        ],
    )
    def test_schema_survives_roundtrip(self, factory):
        original = factory()
        recovered = parse_xsd(to_xsd(original))
        assert render_schema(recovered) == render_schema(original)
