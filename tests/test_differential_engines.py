"""Cross-engine differential property tests.

The paper's central executable claim is that a Clip mapping has one
meaning regardless of the transformation language: the direct tgd
executor, the generated-XQuery interpreter, and (for the non-grouped
subset) the generated XSLT must produce the same instance.  This suite
turns that claim into a property: hypothesis generates arbitrary
source instances of the running example's schema, and every engine
must agree on the canonical form of the output for the Figure 3
(filter), Figure 4 (context propagation, both variants), Figure 6
(join) and Figure 7 (grouping + join) scenarios.

The same harness is differential across *evaluation strategies*: the
join-aware compiled plans of :mod:`repro.executor.planner` must
serialize byte-identically to the naive reference path
(``optimize=False``) on every generated instance.

All engines run through the compiled-plan cache — each (scenario,
engine) pair compiles exactly once across the whole run, which is also
a soak test of plan reuse: hundreds of differently-shaped documents
through the same cached plans.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import ENGINES, PlanCache
from repro.scenarios import deptstore
from repro.xml.model import element

# One cache for the whole module: the point is that repeated examples
# reuse the compiled plans.
_CACHE = PlanCache()

_SCENARIOS = {
    "fig3": deptstore.mapping_fig3,
    "fig4": deptstore.mapping_fig4,
    "fig4-no-arc": lambda: deptstore.mapping_fig4(context_arc=False),
    "fig6": deptstore.mapping_fig6,
    "fig7": deptstore.mapping_fig7,
}

#: Grouping Skolems and distribution have no XSLT 1.0 counterpart; the
#: XSLT engine covers the non-grouped, non-distributed subset only.
_XSLT_SCENARIOS = ("fig3", "fig4", "fig6")

_PROJECT_NAMES = st.sampled_from(
    ["Appliances", "Robotics", "Brand promotion", "Analytics"]
)
_DEPT_NAMES = st.sampled_from(["ICT", "Marketing", "Sales", "R&D"])
_EMP_NAMES = st.sampled_from(
    ["John Smith", "Andrew Clarence", "Mark Tane", "Jim Bellish", "Rita Moss"]
)
# Salaries straddle Figure 3/4's `sal > 11000` filter threshold.
_SALARIES = st.integers(min_value=8000, max_value=15000)
# A small pid pool: employee pids may join zero, one or several
# projects — including dangling references, which a join must drop.
_PIDS = st.integers(min_value=1, max_value=4)


@st.composite
def _dept(draw):
    children = [element("dname", text=draw(_DEPT_NAMES))]
    for _ in range(draw(st.integers(0, 3))):
        children.append(
            element(
                "Proj",
                element("pname", text=draw(_PROJECT_NAMES)),
                pid=draw(_PIDS),
            )
        )
    for _ in range(draw(st.integers(0, 4))):
        children.append(
            element(
                "regEmp",
                element("ename", text=draw(_EMP_NAMES)),
                element("sal", text=draw(_SALARIES)),
                pid=draw(_PIDS),
            )
        )
    return element("dept", *children)


_SOURCE_INSTANCES = st.lists(_dept(), min_size=1, max_size=3).map(
    lambda depts: element("source", *depts)
)


def _apply(figure: str, engine: str, instance):
    plan = _CACHE.get_or_compile(_SCENARIOS[figure](), engine)
    return plan(instance)


@pytest.mark.parametrize("figure", sorted(_SCENARIOS))
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(instance=_SOURCE_INSTANCES)
def test_engines_agree_canonically(figure, instance):
    reference = _apply(figure, "tgd", instance)
    via_xquery = _apply(figure, "xquery", instance)
    assert reference.equals_canonically(via_xquery), (
        f"{figure}: tgd executor and XQuery interpreter disagree"
    )
    if figure in _XSLT_SCENARIOS:
        via_xslt = _apply(figure, "xslt", instance)
        assert reference.equals_canonically(via_xslt), (
            f"{figure}: tgd executor and XSLT interpreter disagree"
        )


@pytest.mark.parametrize("figure", sorted(_SCENARIOS))
@settings(max_examples=25, deadline=None)
@given(instance=_SOURCE_INSTANCES)
def test_tgd_and_xquery_agree_in_document_order(figure, instance):
    """Beyond canonical agreement, the two full-coverage engines agree
    on sibling order too (both follow the paper's iteration order)."""
    assert _apply(figure, "tgd", instance) == _apply(figure, "xquery", instance)


@pytest.mark.parametrize("figure", sorted(_SCENARIOS))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(instance=_SOURCE_INSTANCES)
def test_optimized_naive_and_xquery_serialize_identically(figure, instance):
    """The join-aware planner is a pure optimization: the optimized
    plan, the naive reference path (``optimize=False``), and the
    XQuery interpreter serialize to byte-identical target documents
    for every generated instance — hash joins, pushed filters and
    generator reordering never change a single byte of output."""
    from repro.xml.serialize import to_xml

    optimized = _CACHE.get_or_compile(
        _SCENARIOS[figure](), "tgd", optimize=True
    )
    naive = _CACHE.get_or_compile(
        _SCENARIOS[figure](), "tgd", optimize=False
    )
    assert optimized.optimize and not naive.optimize
    assert optimized.fingerprint != naive.fingerprint
    fast = to_xml(optimized(instance))
    assert fast == to_xml(naive(instance)), (
        f"{figure}: optimized and naive tgd evaluation diverge"
    )
    assert fast == to_xml(_apply(figure, "xquery", instance)), (
        f"{figure}: optimized tgd and XQuery serialization diverge"
    )


def test_each_scenario_engine_pair_compiled_once():
    """The property runs above hit the cache; compile counts stay at
    one per (scenario, engine, optimize) triple."""
    mapping_count = len(_SCENARIOS)
    # tgd-optimized + tgd-naive + xquery per scenario, plus the XSLT
    # subset.
    expected = 3 * mapping_count + len(_XSLT_SCENARIOS)
    stats = _CACHE.stats
    assert stats.misses <= expected
    assert stats.hits > stats.misses


_ENV_WORKERS = int(os.environ.get("CLIP_TEST_WORKERS", "1"))


@pytest.mark.parametrize("figure", sorted(_SCENARIOS))
def test_batch_runner_pool_agrees_with_inline(figure):
    """The pool path is differential too: ``workers=N`` (from the CI
    matrix's ``CLIP_TEST_WORKERS``) must reproduce the in-process
    results document-for-document, for every scenario."""
    from repro.runtime import BatchRunner, PlanCache
    from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance

    mapping = _SCENARIOS[figure]()
    docs = [
        make_deptstore_instance(
            DeptstoreSpec(
                departments=2,
                projects_per_dept=2,
                employees_per_dept=3,
                seed=seed,
            )
        )
        for seed in range(6)
    ]
    inline = BatchRunner(mapping, workers=1, cache=_CACHE).run(docs)
    if _ENV_WORKERS == 1:
        reference = [_apply(figure, "tgd", doc) for doc in docs]
        assert inline.results == reference
        return
    pooled = BatchRunner(mapping, workers=_ENV_WORKERS, cache=_CACHE).run(docs)
    assert pooled.results == inline.results
    assert pooled.metrics.documents == len(docs)
    assert pooled.metrics.failures == 0


@pytest.mark.parametrize("figure", sorted(_SCENARIOS))
def test_traced_runs_are_byte_identical_to_untraced(figure):
    """Tracing is observation, not interference: with a tracer
    attached, every engine serializes the exact same target document
    it produces untraced — on the paper's own instance, for every
    scenario."""
    from repro import Transformer
    from repro.runtime import SpanTracer
    from repro.xml.serialize import to_xml

    instance = deptstore.source_instance()
    engines = ("tgd", "xquery", "xslt") if figure in _XSLT_SCENARIOS else (
        "tgd", "xquery",
    )
    for engine in engines:
        untraced = Transformer(_SCENARIOS[figure](), engine=engine)
        tracer = SpanTracer()
        traced = Transformer(
            _SCENARIOS[figure](), engine=engine, trace=tracer
        )
        assert to_xml(traced.apply(instance)) == to_xml(untraced(instance)), (
            f"{figure}/{engine}: tracing changed the output"
        )
        trace = tracer.to_trace()
        assert trace.engine == engine
        assert trace.find("transform") is not None


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(instance=_SOURCE_INSTANCES)
def test_traced_batch_matches_untraced_batch(instance):
    """The batch runner's traced path (scratch tracers around each
    attempt, payload merging) reproduces the untraced results
    document-for-document on generated instances."""
    from repro.runtime import BatchRunner, SpanTracer

    mapping = _SCENARIOS["fig6"]()
    docs = [instance, instance]
    plain = BatchRunner(mapping, cache=_CACHE).run(docs)
    tracer = SpanTracer()
    traced = BatchRunner(mapping, cache=_CACHE, trace=tracer).run(docs)
    assert traced.results == plain.results
    assert traced.metrics.documents == plain.metrics.documents
    assert tracer.to_trace().find("batch") is not None


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(instance=_SOURCE_INSTANCES)
def test_service_transform_is_byte_identical_to_direct_engines(instance):
    """The HTTP service is differential too: a transform served through
    ``ClipService.dispatch`` serializes byte-identically to the direct
    engine invocation for every generated instance — the service is a
    deployment surface over the same plans, never a fourth engine."""
    import json

    from repro.io import dumps
    from repro.service import ClipService, ServiceConfig
    from repro.xml.serialize import to_xml

    source_text = to_xml(instance)
    service = ClipService(ServiceConfig.resolve(environ={}), cache=_CACHE)
    for figure in ("fig3", "fig6", "fig7"):
        mapping = _SCENARIOS[figure]()
        registered = service.dispatch(
            "POST", "/mappings", {}, dumps(mapping).encode()
        )
        assert registered.status in (200, 201)
        fingerprint = json.loads(registered.body)["fingerprint"]
        response = service.dispatch(
            "POST", f"/transform?mapping={fingerprint}", {},
            source_text.encode(),
        )
        assert response.status == 200, response.body
        direct = to_xml(_apply(figure, "tgd", instance))
        assert response.body.decode() == direct, (
            f"{figure}: service transform diverges from the tgd engine"
        )


# -- the round-trip oracle ---------------------------------------------------
#
# A copy-like mapping over the running example's source schema: its
# quasi-inverse applied to the mapping's own output must recover the
# containment-predicted core, byte for byte — two independently derived
# tgds, one required answer.  The filter straddles the generated salary
# range, so generated instances exercise both kept and dropped rows.


def _copylike_mapping():
    from repro.core.mapping import ClipMapping
    from repro.xsd.dsl import attr, elem, schema
    from repro.xsd.types import INT, STRING

    target = schema(
        elem(
            "staff",
            elem(
                "division", "[0..*]", attr("dn", STRING),
                elem(
                    "worker", "[0..*]",
                    attr("wname", STRING), attr("pay", INT),
                ),
            ),
        )
    )
    clip = ClipMapping(deptstore.source_schema(), target)
    d = clip.build("dept", "division", var="d")
    clip.build(
        "dept/regEmp", "division/worker", var="e", parent=d,
        condition="$e.sal.value > 11000",
    )
    clip.value("dept/dname/value", "division/@dn")
    clip.value("dept/regEmp/ename/value", "division/worker/@wname")
    clip.value("dept/regEmp/sal/value", "division/worker/@pay")
    return clip


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(instance=_SOURCE_INSTANCES)
def test_quasi_inverse_round_trip_matches_predicted_core(instance):
    from repro.algebra import predicted_core, quasi_inverse
    from repro.xml.serialize import to_xml

    mapping = _copylike_mapping()
    forward = _CACHE.get_or_compile(mapping, "tgd")
    inverse_mapping = quasi_inverse(mapping)
    inverse = _CACHE.get_or_compile(inverse_mapping, "tgd")
    target_doc = forward(instance)
    recovered = inverse(target_doc)
    predicted = predicted_core(mapping, instance)
    assert to_xml(recovered) == to_xml(predicted), (
        "quasi-inverse round trip diverges from the predicted core"
    )
    # The inverse is an ordinary Clip mapping: the XQuery interpreter
    # must agree with the tgd executor on the recovered source too.
    via_xquery = _CACHE.get_or_compile(inverse_mapping, "xquery")(target_doc)
    assert to_xml(via_xquery) == to_xml(recovered), (
        "inverse mapping diverges across engines"
    )


def test_broken_inverse_is_caught_by_the_oracle():
    """Negative control: a deliberately miswired inverse — the
    employee-name write-back omitted — must NOT reproduce the predicted
    core, while the derived quasi-inverse does.  The round-trip oracle
    can actually fail; green runs mean something."""
    from repro.algebra import predicted_core, quasi_inverse
    from repro.core.mapping import ClipMapping
    from repro.xml.serialize import to_xml

    mapping = _copylike_mapping()
    instance = deptstore.source_instance()
    forward = _CACHE.get_or_compile(mapping, "tgd")
    target_doc = forward(instance)
    predicted = predicted_core(mapping, instance)

    broken = ClipMapping(mapping.target, mapping.source)
    d = broken.build("division", "dept", var="d")
    broken.build("division/worker", "dept/regEmp", var="e", parent=d)
    broken.value("division/@dn", "dept/dname/value")
    broken.value("division/worker/@pay", "dept/regEmp/sal/value")
    # division/worker/@wname → ename deliberately omitted.
    recovered_broken = _CACHE.get_or_compile(broken, "tgd")(target_doc)
    assert to_xml(recovered_broken) != to_xml(predicted), (
        "the negative control passed the oracle; the check is vacuous"
    )

    recovered_good = _CACHE.get_or_compile(
        quasi_inverse(mapping), "tgd"
    )(target_doc)
    assert to_xml(recovered_good) == to_xml(predicted)


def test_paper_instance_through_all_engines():
    """The paper's own instance, as a pinned differential case."""
    instance = deptstore.source_instance()
    for figure, make_mapping in _SCENARIOS.items():
        engines = ("tgd", "xquery", "xslt") if figure in _XSLT_SCENARIOS else (
            "tgd", "xquery",
        )
        assert set(engines) <= set(ENGINES)
        outputs = [_apply(figure, engine, instance) for engine in engines]
        first = outputs[0]
        for other in outputs[1:]:
            assert first.equals_canonically(other), figure
