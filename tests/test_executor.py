"""Unit tests for the direct tgd execution engine."""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.core.mapping import ClipMapping
from repro.core.tgd import (
    Assignment,
    Constant,
    NestedTgd,
    Proj,
    SchemaRoot,
    SourceGenerator,
    TargetGenerator,
    TgdComparison,
    TgdMapping,
    Var,
    proj_path,
)
from repro.errors import ExecutionError
from repro.executor import execute
from repro.scenarios import deptstore
from repro.xml.model import element
from repro.xsd.dsl import attr, elem, schema
from repro.xsd.types import INT, STRING


def _simple_tgd(**overrides) -> NestedTgd:
    """∀ d ∈ source.dept → ∃ d′ ∈ target.department | d′.@name = d.dname.value"""
    mapping = TgdMapping(
        source_gens=(SourceGenerator("d", proj_path(SchemaRoot("source"), ["dept"])),),
        where=overrides.get("where", ()),
        target_gens=(
            TargetGenerator("d'", Proj(SchemaRoot("target"), "department")),
        ),
        assignments=(
            Assignment(
                Proj(Var("d'"), "@name"),
                proj_path(Var("d"), ["dname", "value"]),
            ),
        ),
    )
    return NestedTgd((mapping,), source_root="source", target_root="target")


@pytest.fixture
def instance():
    return deptstore.source_instance()


class TestBasics:
    def test_root_tag_mismatch_rejected(self, instance):
        tgd = NestedTgd((), source_root="other", target_root="target")
        with pytest.raises(ExecutionError):
            execute(tgd, instance)

    def test_quantified_generator_creates_per_iteration(self, instance):
        out = execute(_simple_tgd(), instance)
        assert [d.attribute("name") for d in out.findall("department")] == [
            "ICT",
            "Marketing",
        ]

    def test_where_filters(self, instance):
        condition = TgdComparison(
            proj_path(Var("d"), ["dname", "value"]), "=", Constant("ICT")
        )
        out = execute(_simple_tgd(where=(condition,)), instance)
        assert len(out.findall("department")) == 1

    def test_unbound_variable_raises(self, instance):
        mapping = TgdMapping(
            source_gens=(SourceGenerator("d", Var("nope")),),
            where=(),
            target_gens=(),
            assignments=(),
        )
        tgd = NestedTgd((mapping,), source_root="source", target_root="target")
        with pytest.raises(ExecutionError):
            execute(tgd, instance)

    def test_generator_over_atomics_raises(self, instance):
        mapping = TgdMapping(
            source_gens=(
                SourceGenerator("x", proj_path(SchemaRoot("source"), ["dept", "dname", "value"])),
            ),
            where=(),
            target_gens=(),
            assignments=(),
        )
        tgd = NestedTgd((mapping,), source_root="source", target_root="target")
        with pytest.raises(ExecutionError):
            execute(tgd, instance)


class TestMinimumCardinality:
    def test_wrapper_created_once_across_iterations(self, instance):
        tgd = compile_clip(deptstore.mapping_fig3())
        out = execute(tgd, instance)
        assert len(out.findall("department")) == 1

    def test_wrapper_created_even_when_iteration_is_empty(self):
        """Constant tags wrap the FLWOR: they exist with zero matches."""
        clip = deptstore.mapping_fig3()
        empty_source = element(
            "source",
            element("dept", element("dname", text="Empty")),
        )
        out = execute(compile_clip(clip), empty_source)
        assert len(out.findall("department")) == 1
        assert len(out.findall("department")[0].findall("employee")) == 0

    def test_assignment_materializes_intermediate_singletons(self, source_schema=None):
        """Section III-B example b: 'an E element will be produced, too'."""
        source = deptstore.source_schema()
        target = schema(
            elem("t", elem("D", "[0..*]", elem("E", attr("att5", STRING, required=False)))),
        )
        clip = ClipMapping(source, target)
        clip.build("dept", "D", var="d")
        clip.value("dept/dname/value", "D/E/@att5")
        out = execute(compile_clip(clip), deptstore.source_instance())
        first = out.findall("D")[0]
        assert first.find("E").attribute("att5") == "ICT"

    def test_missing_source_value_leaves_attribute_absent(self):
        source = schema(
            elem("s", elem("item", "[0..*]", elem("note", "[0..1]", text=STRING))),
        )
        target = schema(
            elem("t", elem("out", "[0..*]", attr("note", STRING, required=False))),
        )
        clip = ClipMapping(source, target)
        clip.build("item", "out", var="i")
        clip.value("item/note/value", "out/@note")
        instance = element(
            "s", element("item", element("note", text="x")), element("item")
        )
        out = execute(compile_clip(clip), instance)
        first, second = out.findall("out")
        assert first.attribute("note") == "x"
        assert not second.has_attribute("note")

    def test_multivalued_scalar_assignment_raises(self):
        source = schema(
            elem("s", elem("item", "[0..*]", elem("v", "[0..*]", text=INT))),
        )
        target = schema(
            elem("t", elem("out", "[0..*]", attr("n", INT, required=False))),
        )
        clip = ClipMapping(source, target)
        clip.build("item", "out", var="i")
        clip.value("item/v/value", "out/@n")
        instance = element(
            "s",
            element("item", element("v", text=1), element("v", text=2)),
        )
        tgd = compile_clip(clip, require_valid=False)
        with pytest.raises(ExecutionError):
            execute(tgd, instance)

    def test_duplicate_values_collapse_for_scalar_assignment(self):
        """Equal values are not 'distinct': grouping attrs rely on this."""
        source = schema(
            elem("s", elem("item", "[0..*]", elem("v", "[0..*]", text=INT))),
        )
        target = schema(
            elem("t", elem("out", "[0..*]", attr("n", INT, required=False))),
        )
        clip = ClipMapping(source, target)
        clip.build("item", "out", var="i")
        clip.value("item/v/value", "out/@n")
        instance = element(
            "s", element("item", element("v", text=7), element("v", text=7))
        )
        out = execute(compile_clip(clip, require_valid=False), instance)
        assert out.findall("out")[0].attribute("n") == 7


class TestGrouping:
    def test_groups_keyed_in_first_appearance_order(self, instance):
        out = execute(compile_clip(deptstore.mapping_fig7()), instance)
        assert [p.attribute("name") for p in out.findall("project")] == [
            "Appliances",
            "Robotics",
            "Brand promotion",
        ]

    def test_group_cache_scoped_per_parent(self):
        """The same key under different parents makes different groups."""
        source = deptstore.source_schema()
        target = schema(
            elem(
                "t",
                elem(
                    "department",
                    "[1..*]",
                    attr("name", STRING, required=False),
                    elem("project", "[0..*]", attr("name", STRING, required=False)),
                ),
            )
        )
        clip = ClipMapping(source, target)
        dept_node = clip.build("dept", "department", var="d")
        clip.group("dept/Proj", "department/project", var="p",
                   by=["$p.pname.value"], parent=dept_node)
        clip.value("dept/dname/value", "department/@name")
        clip.value("dept/Proj/pname/value", "department/project/@name")
        out = execute(compile_clip(clip), deptstore.source_instance())
        ict, marketing = out.findall("department")
        # 'Appliances' exists in both departments: per-parent groups.
        assert [p.attribute("name") for p in ict.findall("project")] == [
            "Appliances",
            "Robotics",
        ]
        assert [p.attribute("name") for p in marketing.findall("project")] == [
            "Brand promotion",
            "Appliances",
        ]


class TestDistribution:
    def test_distribute_targets_every_existing_instance(self, instance):
        tgd = compile_clip(deptstore.mapping_fig4(context_arc=False))
        out = execute(tgd, instance)
        for dept in out.findall("department"):
            assert len(dept.findall("employee")) == 3

    def test_distribute_falls_back_to_wrapper_when_none_exist(self, instance):
        """Only the employee mapping: no departments were built, so the
        content lands in a singleton wrapper instead of vanishing."""
        tgd = compile_clip(deptstore.mapping_fig4(context_arc=False))
        employees_only = NestedTgd(
            (tgd.roots[1],), source_root="source", target_root="target"
        )
        out = execute(employees_only, instance)
        assert len(out.findall("department")) == 1
        assert len(out.findall("department")[0].findall("employee")) == 3


class TestAggregates:
    def test_count_over_elements_and_avg_over_values(self, instance):
        out = execute(compile_clip(deptstore.mapping_fig9()), instance)
        ict = out.findall("department")[0]
        assert ict.attribute("numProj") == 2
        assert ict.attribute("avg-sal") == 10875

    def test_aggregate_context_restricted_by_builder(self):
        """Only the projects *within a given department* are counted."""
        out = execute(compile_clip(deptstore.mapping_fig9()), deptstore.source_instance())
        counts = [d.attribute("numProj") for d in out.findall("department")]
        assert counts == [2, 2]  # not 4 (the document-wide count)
