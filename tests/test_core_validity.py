"""Unit tests for the Section III validity rules.

The class names follow the paper's subsections: safe builders, valid
CPTs (topological alignment with the target), and valid value mappings
(driver existence and bounded source paths), including the paper's
lettered a)–d) examples.
"""

from __future__ import annotations

import pytest

from repro.core.mapping import ClipMapping
from repro.core.validity import check, find_driver, residual_repeats, source_anchor
from repro.errors import InvalidMappingError
from repro.scenarios import deptstore
from repro.xsd.dsl import attr, elem, schema
from repro.xsd.types import STRING


class TestSafeBuilders:
    def test_single_to_repeating_is_safe(self, source_schema):
        """Example a): a single element safely connects to a repeating one."""
        target = schema(elem("target", elem("item", "[0..*]", attr("n", STRING, required=False))))
        clip = ClipMapping(source_schema, target)
        clip.build("dept/dname", "item", var="x")  # dname is [1..1]
        assert check(clip).is_valid

    def test_repeating_to_single_is_unsafe(self, source_schema):
        target = schema(elem("target", elem("only", attr("n", STRING, required=False))))
        clip = ClipMapping(source_schema, target)
        clip.build("dept", "only", var="d")
        report = check(clip)
        assert not report.is_valid
        assert report.by_rule("SAFE_BUILDER")

    def test_cartesian_product_to_single_is_unsafe(self, source_schema):
        """Example b): a product result cannot feed a non-repeating element."""
        target = schema(elem("target", elem("only", attr("n", STRING, required=False))))
        clip = ClipMapping(source_schema, target)
        clip.build(["dept/dname", "dept/dname"], "only", var=["a", "b"])
        assert check(clip).by_rule("SAFE_BUILDER")

    def test_group_node_to_single_is_unsafe(self, source_schema):
        target = schema(elem("target", elem("only", attr("n", STRING, required=False))))
        clip = ClipMapping(source_schema, target)
        clip.group("dept/Proj", "only", var="p", by=["$p.pname.value"])
        assert check(clip).by_rule("SAFE_BUILDER")


class TestCptAlignment:
    def test_linear_valid(self, source_schema, departments_target):
        """Linear valid: CPT aligned with both schemas."""
        clip = ClipMapping(source_schema, departments_target)
        parent = clip.build("dept", "department", var="d")
        clip.build("dept/regEmp", "department/employee", var="r", parent=parent)
        assert check(clip).is_valid

    def test_inverted_valid(self, source_schema):
        """Inverted valid: aligned with the target, not the source —
        Figure 8's shape."""
        clip = deptstore.mapping_fig8()
        assert check(clip).is_valid

    def test_inverted_invalid(self, source_schema, departments_target):
        """Inverted INVALID: the CPT is not aligned with the target —
        the child's target is not below the parent's."""
        clip = ClipMapping(source_schema, departments_target)
        parent = clip.build("dept/regEmp", "department/employee", var="r")
        clip.build("dept", "department", var="d", parent=parent)
        report = check(clip)
        assert report.by_rule("CPT_ALIGNMENT")

    def test_sibling_targets_under_common_parent_are_aligned(self, source_schema, departments_target):
        clip = deptstore.mapping_fig5()
        assert check(clip).is_valid


class TestValueMappingDrivers:
    def test_driver_is_first_builder_on_target_path(self):
        clip = deptstore.mapping_fig4()
        vm = clip.value_mappings[0]
        driver = find_driver(clip, vm)
        assert driver.target.name == "employee"

    def test_driver_found_on_ancestor(self, source_schema):
        """Example b): att5 does not directly descend from the built
        element — the builder on the ancestor still drives it."""
        target = schema(
            elem(
                "target",
                elem(
                    "D",
                    "[0..*]",
                    elem("E", attr("att5", STRING, required=False)),
                ),
            )
        )
        clip = ClipMapping(source_schema, target)
        clip.build("dept", "D", var="d")
        clip.value("dept/dname/value", "D/E/@att5")
        assert find_driver(clip, clip.value_mappings[0]).target.name == "D"
        assert check(clip).is_valid

    def test_no_driver_with_builders_is_invalid(self, source_schema):
        """Rule (i): with a CPT present, a value mapping whose target
        path meets no builder is invalid."""
        target = schema(
            elem(
                "target",
                elem("X", "[0..*]", attr("a", STRING, required=False)),
                elem("Y", "[0..*]", attr("b", STRING, required=False)),
            )
        )
        clip = ClipMapping(source_schema, target)
        clip.build("dept", "X", var="d")
        clip.value("dept/dname/value", "Y/@b")
        assert check(clip).by_rule("VM_DRIVER")

    def test_no_builders_at_all_is_valid_default(self, source_schema, departments_target):
        clip = ClipMapping(source_schema, departments_target)
        clip.value("dept/regEmp/ename/value", "department/employee/@name")
        assert check(clip).is_valid

    def test_unbounded_repeating_source_is_invalid(self, source_schema, departments_target):
        """Example d): the source value sits under a repeating element no
        builder bounds — Clip does not know how to iterate it."""
        clip = ClipMapping(source_schema, departments_target)
        clip.build("dept", "department", var="d")
        clip.value("dept/regEmp/ename/value", "department/project/@name")
        assert check(clip).by_rule("VM_SOURCE_SCOPE")

    def test_bounded_source_is_valid(self, source_schema, departments_target):
        """Example c): the driver bounds an ancestor of the value node."""
        clip = ClipMapping(source_schema, departments_target)
        clip.build("dept", "department", var="d")
        clip.value("dept/dname/value", "department/project/@name")
        assert check(clip).is_valid

    def test_aggregates_are_always_valid(self, source_schema):
        """'The driver of an aggregate value mapping is always valid.'"""
        clip = ClipMapping(source_schema, deptstore.target_schema_aggregates())
        clip.build("dept", "department", var="d")
        clip.value_aggregate("avg", "dept/regEmp/sal/value", "department/@avg-sal")
        assert check(clip).is_valid


class TestGroupedValues:
    def test_grouping_attribute_may_be_mapped(self):
        clip = deptstore.mapping_fig7()
        assert check(clip).is_valid

    def test_non_grouping_value_of_grouped_element_is_invalid(self, source_schema):
        """'Non-grouping values have multiple and a-priori different
        values, and cannot be mapped … unless condensed by aggregates.'"""
        target = schema(
            elem(
                "target",
                elem("project", "[1..*]", attr("name", STRING, required=False), attr("pid", STRING, required=False)),
            )
        )
        clip = ClipMapping(source_schema, target)
        clip.group("dept/Proj", "project", var="p", by=["$p.pname.value"])
        clip.value("dept/Proj/pname/value", "project/@name")  # grouping attr: ok
        clip.value("dept/Proj/@pid", "project/@pid")  # non-grouping: not ok
        report = check(clip)
        assert report.by_rule("VM_GROUPED_VALUE")
        assert len(report.errors()) == 1


class TestStructuralRules:
    def test_unbound_condition_variable(self, source_schema, departments_target):
        clip = ClipMapping(source_schema, departments_target)
        clip.build("dept", "department", var="d", condition="$zz.dname.value = 'ICT'")
        assert check(clip).by_rule("VAR_SCOPE")

    def test_grouping_attr_must_use_own_variables(self, source_schema):
        clip = ClipMapping(source_schema, deptstore.target_schema_grouped_projects())
        outer = clip.context("dept", var="d")
        clip.group("dept/Proj", "project", var="p", by=["$d.dname.value"], parent=outer)
        assert check(clip).by_rule("GROUP_ATTRS")

    def test_foreign_schema_elements_rejected(self, source_schema, departments_target):
        other = deptstore.source_schema()  # a *different* tree instance
        clip = ClipMapping(source_schema, departments_target)
        clip.build(other.element("dept"), "department", var="d")
        assert check(clip).by_rule("SCHEMA_SIDE")


class TestHelpers:
    def test_residual_repeats(self, source_schema):
        dept = source_schema.element("dept")
        sal = source_schema.element("dept/regEmp/sal")
        assert [e.name for e in residual_repeats(dept, sal)] == ["regEmp"]
        reg = source_schema.element("dept/regEmp")
        assert residual_repeats(reg, sal) == []

    def test_source_anchor_prefers_deepest(self):
        clip = deptstore.mapping_fig4()
        employee_node = clip.roots[0].children[0]
        ename = clip.source.element("dept/regEmp/ename")
        owner, arc = source_anchor(employee_node, ename)
        assert arc.variable == "r"

    def test_invalid_mapping_error_carries_report(self, source_schema, departments_target):
        from repro.core.compile import compile_clip

        clip = ClipMapping(source_schema, departments_target)
        clip.build("dept", "department", var="d", condition="$zz.x = 1")
        with pytest.raises(InvalidMappingError) as exc:
            compile_clip(clip)
        assert exc.value.report.by_rule("VAR_SCOPE")
