"""Unit tests for the Clip object model and its construction API."""

from __future__ import annotations

import pytest

from repro.core.mapping import BuilderArc, BuildNode, ClipMapping, ValueMapping
from repro.errors import MappingError
from repro.scenarios import deptstore


@pytest.fixture
def clip(source_schema, departments_target):
    return ClipMapping(source_schema, departments_target)


class TestBuildApi:
    def test_build_draws_builder_through_fresh_node(self, clip):
        node = clip.build("dept", "department", var="d")
        assert node.target.name == "department"
        assert node.incoming[0].source.name == "dept"
        assert node.incoming[0].variable == "d"
        assert clip.roots == [node]

    def test_context_node_has_no_output(self, clip):
        node = clip.context("dept", var="d")
        assert node.target is None
        assert not node.has_output

    def test_parent_attaches_context_arc(self, clip):
        parent = clip.build("dept", "department", var="d")
        child = clip.build("dept/regEmp", "department/employee", var="r", parent=parent)
        assert child.parent is parent
        assert parent.children == (child,)
        assert clip.roots == [parent]  # child is not a root

    def test_multi_arc_node_with_condition(self, source_schema):
        clip = ClipMapping(source_schema, deptstore.target_schema_projemp())
        node = clip.build(
            ["dept/Proj", "dept/regEmp"],
            "project-emp",
            var=["p", "r"],
            condition="$p.@pid = $r.@pid",
        )
        assert len(node.incoming) == 2
        assert node.condition.is_join()

    def test_group_node(self, source_schema):
        clip = ClipMapping(source_schema, deptstore.target_schema_grouped_projects())
        node = clip.group("dept/Proj", "project", var="p", by=["$p.pname.value"])
        assert node.is_group
        assert str(node.grouping[0]) == "$p.pname.value"

    def test_group_requires_attributes(self, source_schema):
        clip = ClipMapping(source_schema, deptstore.target_schema_grouped_projects())
        with pytest.raises(MappingError):
            clip.group("dept/Proj", "project", var="p", by=[])

    def test_mismatched_vars_rejected(self, clip):
        with pytest.raises(MappingError):
            clip.build(["dept/Proj", "dept/regEmp"], "department", var=["p"])

    def test_duplicate_variables_rejected(self, clip):
        with pytest.raises(MappingError):
            clip.build(["dept/Proj", "dept/regEmp"], "department", var=["x", "x"])

    def test_node_needs_incoming_builder(self):
        with pytest.raises(MappingError):
            BuildNode([])

    def test_double_context_arc_rejected(self, clip):
        p1 = clip.build("dept", "department", var="d")
        p2 = clip.context("dept", var="d2")
        child = clip.build("dept/regEmp", "department/employee", var="r", parent=p1)
        with pytest.raises(MappingError):
            p2.attach(child)


class TestValueApi:
    def test_value_mapping_resolution(self, clip):
        vm = clip.value("dept/regEmp/ename/value", "department/employee/@name")
        assert vm.target.attribute == "name"
        assert vm.sources[0].element.name == "ename"

    def test_element_source_requires_aggregate(self, clip):
        with pytest.raises(MappingError):
            clip.value("dept/Proj", "department/employee/@name")

    def test_aggregate_from_elements_allowed(self, source_schema):
        clip = ClipMapping(source_schema, deptstore.target_schema_aggregates())
        vm = clip.value_aggregate("count", "dept/Proj", "department/@numProj")
        assert vm.is_aggregate
        assert vm.aggregate.name == "count"

    def test_multi_source_requires_function(self, clip):
        with pytest.raises(MappingError):
            ValueMapping(
                [
                    clip.source.value("dept/regEmp/ename/value"),
                    clip.source.value("dept/dname/value"),
                ],
                clip.target.value("department/employee/@name"),
            )

    def test_multi_source_with_concat(self, clip):
        from repro.core.functions import CONCAT

        vm = clip.value(
            ["dept/dname/value", "dept/regEmp/ename/value"],
            "department/employee/@name",
            function=CONCAT,
        )
        assert vm.function is CONCAT

    def test_scalar_and_aggregate_conflict(self, clip):
        from repro.core.functions import CONCAT, COUNT

        with pytest.raises(MappingError):
            ValueMapping(
                [clip.source.value("dept/dname/value")],
                clip.target.value("department/@name") if False else clip.target.value("department/employee/@name"),
                function=CONCAT,
                aggregate=COUNT,
            )

    def test_target_must_be_value_node(self, clip):
        with pytest.raises(MappingError):
            clip.value("dept/dname/value", "department")


class TestScopes:
    def test_arcs_in_scope_nearest_first(self, clip):
        parent = clip.build("dept", "department", var="d")
        child = clip.build("dept/regEmp", "department/employee", var="r", parent=parent)
        scope = child.arcs_in_scope()
        assert [arc.variable for _, arc in scope] == ["r", "d"]

    def test_variable_arc_resolution(self, clip):
        parent = clip.build("dept", "department", var="d")
        child = clip.build("dept/regEmp", "department/employee", var="r", parent=parent)
        node, arc = child.variable_arc("d")
        assert node is parent and arc.variable == "d"
        with pytest.raises(MappingError):
            child.variable_arc("zz")

    def test_subtree_preorder(self, clip):
        parent = clip.build("dept", "department", var="d")
        c1 = clip.build("dept/Proj", "department/project", var="p", parent=parent)
        c2 = clip.build("dept/regEmp", "department/employee", var="r", parent=parent)
        assert list(parent.subtree()) == [parent, c1, c2]

    def test_builders_to(self, clip):
        parent = clip.build("dept", "department", var="d")
        target = clip.target.element("department")
        assert clip.builders_to(target) == [parent]

    def test_build_nodes_across_roots(self, clip):
        clip.build("dept", "department", var="d")
        clip.context("dept", var="c")
        assert len(clip.build_nodes()) == 2
