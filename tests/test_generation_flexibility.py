"""Tests for the Table I flexibility measurement."""

from __future__ import annotations

import pytest

from repro.core.validity import check
from repro.generation import (
    enumerate_candidates,
    measure_flexibility,
)
from repro.scenarios.published import TABLE1_ROWS, clip_fig1, fuxman_fig3


@pytest.mark.parametrize("factory", TABLE1_ROWS, ids=lambda f: f.__name__)
def test_table1_rows_meet_paper_lower_bounds(factory):
    """Table I 'shows a lower-bound of how many more different meaningful
    mappings we could draw using Clip' — our measured extras must meet
    every row's bound."""
    example = factory()
    result = measure_flexibility(
        example.source, example.target, list(example.value_mappings), example.witness
    )
    assert result.extra >= example.paper_extra, (
        f"{example.row}: measured {result.extra} < paper {example.paper_extra}"
    )


@pytest.mark.parametrize("factory", TABLE1_ROWS, ids=lambda f: f.__name__)
def test_clip_outputs_strictly_exceed_clio(factory):
    """The qualitative claim: Clip is strictly more flexible than Clio on
    every example."""
    example = factory()
    result = measure_flexibility(
        example.source, example.target, list(example.value_mappings), example.witness
    )
    assert len(result.clip_outputs) > len(result.clio_outputs)


def test_candidates_include_the_figure5_shape():
    """For this paper's Figure 1 row, the enumeration must contain the
    context-propagation-tree mapping of Figure 5."""
    example = clip_fig1()
    descriptions = [
        c.description
        for c in enumerate_candidates(
            example.source, example.target, example.value_mappings
        )
    ]
    assert "context dept; project (in context); employee (in context)" in descriptions


def test_invalid_candidates_are_filtered_not_counted():
    example = clip_fig1()
    result = measure_flexibility(
        example.source, example.target, list(example.value_mappings), example.witness
    )
    assert result.candidates_valid <= result.candidates_total


def test_join_toggle_present_only_with_constraint():
    example = fuxman_fig3()
    candidates = list(
        enumerate_candidates(example.source, example.target, example.value_mappings)
    )
    joined = [c for c in candidates if "join" in c.description]
    unjoined = [c for c in candidates if "join" not in c.description]
    assert joined and unjoined


def test_enumerated_candidates_are_well_formed():
    """Every enumerated candidate is at least constructible; validity is
    decided by the Section III checker, not by crashes."""
    example = clip_fig1()
    for candidate in enumerate_candidates(
        example.source, example.target, example.value_mappings
    ):
        report = check(candidate.clip)  # must not raise
        assert report is not None
