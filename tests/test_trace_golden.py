"""Golden execution traces: committed canonical span trees.

Each golden file under ``tests/golden/`` is the canonical form of the
trace recorded while transforming the paper's own source instance
(Figure 2) with one (scenario, engine) pair — Figure 3 (filter),
Figure 6 (join) and Figure 7 (grouping + join), through both
full-coverage engines.  The canonical form contains no timestamps and
no machine-dependent data (see :mod:`repro.runtime.trace`), so the
files are byte-stable across machines, Python versions and worker
counts; any change to span structure, naming, id derivation or the
recorded deterministic attributes shows up as a readable diff here.

To regenerate after an *intentional* trace-shape change::

    CLIP_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_trace_golden.py

and commit the updated files together with a ``TRACE_VERSION`` review:
renamed/removed keys or a changed id scheme need a version bump
(``docs/FORMATS.md`` §7); purely additive attributes do not.
"""

from __future__ import annotations

import difflib
import json
import os
from pathlib import Path

import pytest

from repro import Transformer
from repro.runtime import SpanTracer
from repro.scenarios import deptstore

GOLDEN_DIR = Path(__file__).parent / "golden"

_SCENARIOS = {
    "fig3": deptstore.mapping_fig3,
    "fig6": deptstore.mapping_fig6,
    "fig7": deptstore.mapping_fig7,
}

_ENGINES = ("tgd", "xquery")


def _record(figure: str, engine: str) -> str:
    """The canonical trace text for one (scenario, engine) pair.

    A fresh Transformer per recording keeps the ``prepare`` span's
    first-build shape; ``optimize=True`` is pinned so the committed
    plan subtree does not depend on the ``CLIP_OPTIMIZE`` environment
    (the CI matrix runs a no-optimize leg).
    """
    tracer = SpanTracer()
    transformer = Transformer(
        _SCENARIOS[figure](), engine=engine, optimize=True, trace=tracer
    )
    transformer.apply(deptstore.source_instance())
    canonical = tracer.to_trace().canonical_dict()
    return json.dumps(canonical, indent=2, sort_keys=True) + "\n"


def _golden_path(figure: str, engine: str) -> Path:
    return GOLDEN_DIR / f"trace_{figure}_{engine}.json"


@pytest.mark.parametrize("engine", _ENGINES)
@pytest.mark.parametrize("figure", sorted(_SCENARIOS))
def test_golden_trace(figure, engine):
    actual = _record(figure, engine)
    path = _golden_path(figure, engine)
    if os.environ.get("CLIP_UPDATE_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual, encoding="utf-8")
        pytest.skip(f"updated {path.name}")
    assert path.exists(), (
        f"missing golden {path}; run with CLIP_UPDATE_GOLDEN=1 to create it"
    )
    expected = path.read_text(encoding="utf-8")
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"golden/{path.name}",
                tofile="recorded",
                lineterm="",
            )
        )
        pytest.fail(
            f"canonical trace for {figure}/{engine} drifted from the "
            f"committed golden.  If the change is intentional, rerun "
            f"with CLIP_UPDATE_GOLDEN=1 and review docs/FORMATS.md §7 "
            f"versioning.\n{diff}"
        )


@pytest.mark.parametrize("engine", _ENGINES)
@pytest.mark.parametrize("figure", sorted(_SCENARIOS))
def test_recording_is_repeatable(figure, engine):
    """The recording itself is byte-deterministic — two fresh runs of
    the same pair agree before any golden comparison happens."""
    assert _record(figure, engine) == _record(figure, engine)


def test_goldens_parse_as_trace_documents():
    """Committed goldens stay structurally valid: correct format tag,
    parseable version, unique ids, consistent parent references."""
    from repro.runtime import Trace

    paths = sorted(GOLDEN_DIR.glob("trace_*.json"))
    assert len(paths) == len(_SCENARIOS) * len(_ENGINES)
    for path in paths:
        trace = Trace.from_json(path.read_text(encoding="utf-8"))
        seen: dict[str, dict] = {}
        for span in trace.iter_spans():
            assert span["id"] not in seen, f"{path.name}: duplicate id"
            seen[span["id"]] = span
            if span["parent"] is not None:
                assert span["parent"] in seen, (
                    f"{path.name}: dangling parent on {span['path']}"
                )
