"""Property-based tests over *random schemas* (hypothesis).

The figure tests pin behaviour on the paper's schemas; these properties
quantify over schema space itself: for random schema trees,

* the XSD serializer/parser round-trips the structure;
* :func:`minimal_instance` conforms;
* :func:`random_instance` conforms, for any seed;
* completion is idempotent and repairs any pruned instance.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.xsd.complete import complete, minimal_instance
from repro.xsd.dsl import attr as attr_dsl, elem
from repro.xsd.generate import GeneratorSpec, random_instance
from repro.xsd.parser import parse_xsd, to_xsd
from repro.xsd.render import render_schema
from repro.xsd.schema import Cardinality, Schema
from repro.xsd.types import BOOLEAN, FLOAT, INT, STRING
from repro.xsd.validate import validate

_types = st.sampled_from([STRING, INT, FLOAT, BOOLEAN])
_names = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta"]
)
_cards = st.sampled_from(
    [Cardinality(1, 1), Cardinality(0, 1), Cardinality(0, None),
     Cardinality(1, None), Cardinality(2, 5)]
)


@st.composite
def schema_trees(draw, depth=0):
    """Random element declarations with unique child/attribute names."""
    name = draw(_names) + str(draw(st.integers(0, 99)))
    cardinality = draw(_cards) if depth > 0 else Cardinality(1, 1)
    n_attrs = draw(st.integers(0, 2))
    attrs = []
    for index in range(n_attrs):
        attrs.append(
            attr_dsl(
                f"a{index}", draw(_types), required=draw(st.booleans())
            )
        )
    as_leaf = depth >= 3 or draw(st.booleans())
    if as_leaf:
        text = draw(st.one_of(st.none(), _types))
        return elem(name, cardinality, *attrs, text=text)
    children = draw(st.lists(schema_trees(depth=depth + 1), min_size=0, max_size=3))
    # elem() rejects duplicate child names; dedupe here.
    seen, unique = set(), []
    for child in children:
        if child.name not in seen:
            seen.add(child.name)
            unique.append(child)
    return elem(name, cardinality, *attrs, *unique)


@st.composite
def schemas(draw):
    return Schema(draw(schema_trees()))


@settings(max_examples=50, deadline=None)
@given(target=schemas())
def test_xsd_roundtrip_on_random_schemas(target):
    recovered = parse_xsd(to_xsd(target))
    assert render_schema(recovered) == render_schema(target)


@settings(max_examples=50, deadline=None)
@given(target=schemas())
def test_minimal_instance_conforms(target):
    assert validate(minimal_instance(target), target) == []


@settings(max_examples=50, deadline=None)
@given(target=schemas(), seed=st.integers(0, 10_000))
def test_random_instances_conform(target, seed):
    instance = random_instance(target, GeneratorSpec(seed=seed, max_repeat=3))
    assert validate(instance, target) == []


@settings(max_examples=50, deadline=None)
@given(target=schemas(), seed=st.integers(0, 10_000))
def test_completion_is_idempotent_on_valid_instances(target, seed):
    instance = random_instance(target, GeneratorSpec(seed=seed, max_repeat=2))
    completed = complete(instance, target)
    assert completed == instance
    assert complete(completed, target) == completed


@settings(max_examples=50, deadline=None)
@given(target=schemas())
def test_completion_repairs_the_empty_shell(target):
    from repro.xml.model import XmlElement

    shell = XmlElement(target.root.name)
    if target.root.text_type is not None:
        # A bare shell of a text-typed root is completed with a default.
        pass
    repaired = complete(shell, target)
    assert validate(repaired, target) == []
