"""Edge cases of :mod:`repro.runtime.retry`.

The happy paths — a transient fault healing within the attempt budget,
the documented backoff schedule — are covered by the fault-injection
suite.  This module pins the corners: the zero-retry policy, a timeout
that fires on the *final* attempt, and the determinism of the backoff
sequence actually slept by the batch runner under a fixed fault seed.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import DocumentTimeout
from repro.runtime import (
    BatchRunner,
    Deadline,
    Fault,
    FaultInjector,
    PlanCache,
    RetryPolicy,
    call_with_timeout,
    is_transient,
)
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance


@pytest.fixture
def mapping():
    return deptstore.mapping_fig4()


@pytest.fixture
def documents():
    return [
        make_deptstore_instance(
            DeptstoreSpec(departments=1, projects_per_dept=1,
                          employees_per_dept=2, seed=seed)
        )
        for seed in range(4)
    ]


class TestZeroRetryPolicy:
    def test_zero_retries_never_reattempts(self):
        policy = RetryPolicy(max_retries=0)
        assert not policy.should_retry(1, transient=True)
        assert not policy.should_retry(1, transient=False)

    def test_zero_retries_first_transient_fault_dead_letters(
        self, mapping, documents
    ):
        """With ``max_retries=0`` even a fault that would heal on the
        second attempt goes straight to the dead-letter queue."""
        injector = FaultInjector(
            {1: Fault(kind="raise", error="TransientError", attempts=1)}
        )
        batch = BatchRunner(
            mapping, cache=PlanCache(), error_policy="collect",
            max_retries=0, injector=injector,
        ).run(documents)
        [letter] = batch.dead_letters
        assert letter.failure.index == 1
        assert letter.failure.attempts == 1
        assert letter.failure.transient

    def test_delay_is_zero_for_nonpositive_backoff(self):
        policy = RetryPolicy(max_retries=3, backoff=0.0)
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.0, 0.0, 0.0]

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)


class TestTimeoutOnFinalAttempt:
    def test_timeout_firing_on_final_attempt_is_the_recorded_failure(
        self, mapping, documents
    ):
        """A delay fault that outlives the budget on *every* attempt:
        the last attempt's timeout is what the failure records, and the
        attempt count shows the full budget was spent."""
        injector = FaultInjector(
            {2: Fault(kind="delay", seconds=5.0, attempts=2)}
        )
        batch = BatchRunner(
            mapping, cache=PlanCache(), error_policy="collect",
            max_retries=1, timeout=0.05, injector=injector,
        ).run(documents)
        [letter] = batch.dead_letters
        assert letter.failure.index == 2
        assert letter.failure.attempts == 2  # initial + the one retry
        assert letter.failure.error == "DocumentTimeout"
        assert letter.failure.timed_out
        assert letter.failure.transient
        assert batch.metrics.to_dict()["timeouts"] == 2

    def test_heal_exactly_on_final_attempt(self, mapping, documents):
        """The mirror case: the fault stops delaying on the last
        allowed attempt, so the document succeeds with zero failures."""
        injector = FaultInjector(
            {2: Fault(kind="delay", seconds=5.0, attempts=2)}
        )
        batch = BatchRunner(
            mapping, cache=PlanCache(), error_policy="collect",
            max_retries=2, timeout=0.05, injector=injector,
        ).run(documents)
        assert batch.dead_letters == []
        assert batch.metrics.failures == 0
        assert len(batch.results) == len(documents)

    def test_call_with_timeout_raises_document_timeout(self):
        with pytest.raises(DocumentTimeout):
            call_with_timeout(lambda: time.sleep(1.0), timeout=0.02)
        assert is_transient(DocumentTimeout("over budget"))

    def test_call_with_timeout_relays_result_and_error(self):
        assert call_with_timeout(lambda: 42, timeout=5.0) == 42

        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            call_with_timeout(boom, timeout=5.0)


class TestDeadline:
    """The whole-request budget the HTTP service wraps around parse +
    evaluate, built on the same timeout triage as the batch runner."""

    def test_unbounded_deadline_never_expires(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        assert not deadline.expired()
        assert deadline.run(lambda: 42) == 42

    def test_remaining_shrinks_and_floors_at_zero(self):
        deadline = Deadline(30.0)
        first = deadline.remaining()
        time.sleep(0.01)
        second = deadline.remaining()
        assert first > second > 0
        spent = Deadline(1e-9)
        time.sleep(0.01)
        assert spent.remaining() == 0.0
        assert spent.expired()

    def test_run_raises_document_timeout_on_overrun(self):
        with pytest.raises(DocumentTimeout) as excinfo:
            Deadline(0.02).run(lambda: time.sleep(1.0))
        assert is_transient(excinfo.value)

    def test_run_on_a_spent_deadline_raises_before_calling(self):
        deadline = Deadline(1e-9)
        time.sleep(0.01)
        calls = []
        with pytest.raises(DocumentTimeout, match="before evaluation"):
            deadline.run(lambda: calls.append(1))
        assert calls == []

    def test_nonpositive_budget_is_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_run_relays_result_and_error(self):
        assert Deadline(5.0).run(lambda: "ok") == "ok"

        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            Deadline(5.0).run(boom)


class TestBackoffDeterminism:
    def test_schedule_formula(self):
        policy = RetryPolicy(
            max_retries=5, backoff=0.1, backoff_factor=2.0, max_backoff=0.5
        )
        assert [policy.delay(n) for n in range(1, 6)] == [
            0.1, 0.2, 0.4, 0.5, 0.5,
        ]

    def test_slept_backoff_sequence_is_deterministic(
        self, mapping, documents, monkeypatch
    ):
        """Two identical runs under the same (seeded) fault plan sleep
        the exact same backoff sequence — the no-jitter contract the
        batch runner's reruns rely on."""

        def run_once():
            slept: list[float] = []
            with pytest.MonkeyPatch.context() as patch:
                # Only raise-kind faults are injected, so every sleep
                # in the run is a backoff sleep.
                patch.setattr(time, "sleep", slept.append)
                injector = FaultInjector({
                    0: Fault(kind="raise", error="TransientError", attempts=3),
                    3: Fault(kind="raise", error="TransientError", attempts=2),
                })
                batch = BatchRunner(
                    mapping, cache=PlanCache(), error_policy="collect",
                    max_retries=3, backoff=0.01, injector=injector,
                ).run(documents)
            assert batch.metrics.failures == 0
            return slept

        # doc 0 heals on attempt 4 → retries 1..3; doc 3 on attempt 3 →
        # retries 1..2.  backoff=0.01, factor 2 → 0.01, 0.02, 0.04 +
        # 0.01, 0.02 in document order.
        first = run_once()
        assert first == [0.01, 0.02, 0.04, 0.01, 0.02]
        assert run_once() == first
