"""Tests for focused mapping views (filters/highlighting)."""

from __future__ import annotations

from repro.core.views import focus
from repro.scenarios import deptstore


class TestFocus:
    def test_source_focus_filters_value_mappings(self):
        clip = deptstore.mapping_fig5()
        view = focus(clip, source="dept/Proj")
        assert len(view.value_mappings) == 1
        assert view.value_mappings[0].target.element.name == "project"

    def test_target_focus_filters_builders(self):
        clip = deptstore.mapping_fig5()
        view = focus(clip, target="department/employee")
        assert [n.target.name for n in view.build_nodes] == ["employee"]

    def test_ancestor_context_kept_visible(self):
        clip = deptstore.mapping_fig5()
        view = focus(clip, target="department/employee")
        visible_targets = [
            n.target.name for n in view.visible_nodes if n.target is not None
        ]
        assert "department" in visible_targets  # the parent node stays visible

    def test_both_scopes_intersect(self):
        clip = deptstore.mapping_fig5()
        view = focus(clip, source="dept/Proj", target="department/employee")
        assert view.value_mappings == []

    def test_no_scope_is_full_view(self):
        clip = deptstore.mapping_fig5()
        view = focus(clip)
        assert len(view.value_mappings) == len(clip.value_mappings)
        assert len(view.build_nodes) == len(clip.build_nodes())

    def test_empty_view(self):
        clip = deptstore.mapping_fig5()
        view = focus(clip, source="dept/regEmp/sal")
        assert view.value_mappings == []
        assert view.is_empty or view.build_nodes == []

    def test_render_marks_highlighted_nodes(self):
        clip = deptstore.mapping_fig5()
        view = focus(clip, target="department/employee")
        text = view.render()
        assert "»" in text           # the employee node is highlighted
        assert "dept/regEmp" in text
        assert "project" not in text.split("value mappings:")[0].replace(
            "FOCUSED VIEW", ""
        )  # the project sibling node is filtered out of the builders block

    def test_render_empty_view(self):
        clip = deptstore.mapping_fig5()
        text = focus(clip, source="dept/regEmp/sal").render()
        assert "(none in focus)" in text

    def test_group_node_focus(self):
        clip = deptstore.mapping_fig7()
        view = focus(clip, target="project/employee")
        assert len(view.build_nodes) == 1
        assert view.visible_nodes[0].is_group  # the group parent kept
