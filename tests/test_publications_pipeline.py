"""Tests for the publications scenario and pipeline composition."""

from __future__ import annotations

import pytest

from repro.core.validity import check
from repro.errors import MappingError, ValidationError
from repro.pipeline import Pipeline
from repro.scenarios import deptstore, publications as pub
from repro.xml import element
from repro.xsd.validate import validate


@pytest.fixture(scope="module")
def pipeline():
    return Pipeline([pub.normalize_mapping(), pub.publish_mapping()])


class TestScenario:
    def test_mappings_are_valid(self):
        assert check(pub.normalize_mapping()).is_valid
        assert check(pub.publish_mapping()).is_valid

    def test_feed_conforms(self):
        assert validate(pub.feed_instance(), pub.feed_schema()) == []

    def test_stage1_joins_papers_to_venues(self):
        from repro import Transformer

        out = Transformer(pub.normalize_mapping())(pub.feed_instance())
        publications = out.findall("publication")
        assert len(publications) == 3
        by_title = {p.find("title").text: p for p in publications}
        assert by_title["Clip"].attribute("venue") == "ICDE"
        assert by_title["Nested Mappings"].attribute("venue") == "VLDB"
        assert [w.text for w in by_title["Clip"].findall("writer")] == [
            "Raffio",
            "Braga",
            "Ceri",
        ]

    def test_stage2_inverts_to_authors_with_counts(self):
        from repro import Transformer

        catalog = Transformer(pub.normalize_mapping())(pub.feed_instance())
        report = Transformer(pub.publish_mapping())(catalog)
        by_name = {a.attribute("name"): a for a in report.findall("author")}
        assert by_name["Braga"].attribute("papers") == 2
        assert {w.attribute("title") for w in by_name["Braga"].findall("work")} == {
            "Clip",
            "XQBE",
        }
        assert by_name["Fuxman"].attribute("papers") == 1

    def test_engines_agree_on_both_stages(self):
        from repro.core.compile import compile_clip
        from repro.executor import execute
        from repro.xquery import emit_xquery, run_query

        instance = pub.feed_instance()
        for mapping_factory in (pub.normalize_mapping, pub.publish_mapping):
            clip = mapping_factory()
            tgd = compile_clip(clip)
            source = instance if mapping_factory is pub.normalize_mapping else None
            if source is None:
                from repro import Transformer

                source = Transformer(pub.normalize_mapping())(instance)
            assert execute(tgd, source) == run_query(emit_xquery(tgd), source)


class TestPipeline:
    def test_end_to_end_with_stage_validation(self, pipeline):
        report = pipeline.run(pub.feed_instance(), validate_stages=True)
        assert report.tag == "report"
        assert len(report.findall("author")) == 5

    def test_keep_intermediates(self, pipeline):
        stages = pipeline.run(pub.feed_instance(), keep_intermediates=True)
        assert [s.instance.tag for s in stages] == ["catalog", "report"]
        assert all(s.violations == [] for s in stages)

    def test_callable_shorthand(self, pipeline):
        assert pipeline(pub.feed_instance()).tag == "report"

    def test_describe(self, pipeline):
        text = pipeline.describe()
        assert "stage 0: feed → catalog" in text
        assert "stage 1: catalog → report" in text

    def test_mismatched_stages_rejected(self):
        with pytest.raises(MappingError):
            Pipeline([pub.normalize_mapping(), deptstore.mapping_fig3()])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(MappingError):
            Pipeline([])

    def test_stage_validation_failure_raises(self):
        """Feed with no papers: stage 1 emits an empty catalog (valid),
        stage 2 then emits an empty report (valid) — craft a real
        violation instead via an instance missing mandatory content."""
        bad_stage = Pipeline([pub.normalize_mapping()])
        empty_feed = element(
            "feed",
            element("venue", element("vname", text="X"), element("year", text=1), vid=1),
        )
        # Empty output: catalog allows zero publications → still valid.
        out = bad_stage.run(empty_feed, validate_stages=True)
        assert out.findall("publication") == []

    def test_xquery_engine_pipeline(self):
        via_xquery = Pipeline(
            [pub.normalize_mapping(), pub.publish_mapping()], engine="xquery"
        )
        assert via_xquery(pub.feed_instance()) == Pipeline(
            [pub.normalize_mapping(), pub.publish_mapping()]
        )(pub.feed_instance())
