"""Tests for the publications scenario and pipeline composition."""

from __future__ import annotations

import pytest

from repro.core.validity import check
from repro.errors import MappingError, ValidationError
from repro.pipeline import Pipeline
from repro.scenarios import deptstore, publications as pub
from repro.xml import element
from repro.xsd.validate import validate


@pytest.fixture(scope="module")
def pipeline():
    return Pipeline([pub.normalize_mapping(), pub.publish_mapping()])


class TestScenario:
    def test_mappings_are_valid(self):
        assert check(pub.normalize_mapping()).is_valid
        assert check(pub.publish_mapping()).is_valid

    def test_feed_conforms(self):
        assert validate(pub.feed_instance(), pub.feed_schema()) == []

    def test_stage1_joins_papers_to_venues(self):
        from repro import Transformer

        out = Transformer(pub.normalize_mapping())(pub.feed_instance())
        publications = out.findall("publication")
        assert len(publications) == 3
        by_title = {p.find("title").text: p for p in publications}
        assert by_title["Clip"].attribute("venue") == "ICDE"
        assert by_title["Nested Mappings"].attribute("venue") == "VLDB"
        assert [w.text for w in by_title["Clip"].findall("writer")] == [
            "Raffio",
            "Braga",
            "Ceri",
        ]

    def test_stage2_inverts_to_authors_with_counts(self):
        from repro import Transformer

        catalog = Transformer(pub.normalize_mapping())(pub.feed_instance())
        report = Transformer(pub.publish_mapping())(catalog)
        by_name = {a.attribute("name"): a for a in report.findall("author")}
        assert by_name["Braga"].attribute("papers") == 2
        assert {w.attribute("title") for w in by_name["Braga"].findall("work")} == {
            "Clip",
            "XQBE",
        }
        assert by_name["Fuxman"].attribute("papers") == 1

    def test_engines_agree_on_both_stages(self):
        from repro.core.compile import compile_clip
        from repro.executor import execute
        from repro.xquery import emit_xquery, run_query

        instance = pub.feed_instance()
        for mapping_factory in (pub.normalize_mapping, pub.publish_mapping):
            clip = mapping_factory()
            tgd = compile_clip(clip)
            source = instance if mapping_factory is pub.normalize_mapping else None
            if source is None:
                from repro import Transformer

                source = Transformer(pub.normalize_mapping())(instance)
            assert execute(tgd, source) == run_query(emit_xquery(tgd), source)


class TestPipeline:
    def test_end_to_end_with_stage_validation(self, pipeline):
        report = pipeline.run(pub.feed_instance(), validate_stages=True)
        assert report.tag == "report"
        assert len(report.findall("author")) == 5

    def test_keep_intermediates(self, pipeline):
        stages = pipeline.run(pub.feed_instance(), keep_intermediates=True)
        assert [s.instance.tag for s in stages] == ["catalog", "report"]
        assert all(s.violations == [] for s in stages)

    def test_callable_shorthand(self, pipeline):
        assert pipeline(pub.feed_instance()).tag == "report"

    def test_describe(self, pipeline):
        text = pipeline.describe()
        assert "stage 0: feed → catalog" in text
        assert "stage 1: catalog → report" in text

    def test_mismatched_stages_rejected(self):
        with pytest.raises(MappingError):
            Pipeline([pub.normalize_mapping(), deptstore.mapping_fig3()])

    def test_mismatch_error_names_both_stages(self):
        """Regression for the single-render refactor of the adjacency
        check: the error message must still name both stages' schemas
        and positions."""
        with pytest.raises(MappingError) as excinfo:
            Pipeline([pub.normalize_mapping(), deptstore.mapping_fig3()])
        message = str(excinfo.value)
        assert "stage 0 produces schema 'catalog'" in message
        assert "stage 1 consumes 'source'" in message

    def test_adjacency_check_renders_shared_schema_once(self, monkeypatch):
        """A schema object shared between adjacent stages (stage 0's
        target handed to stage 1 as its source) is rendered once, not
        once per comparison."""
        import repro.pipeline as pipeline_module
        from repro.core.mapping import ClipMapping
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import STRING

        mid = schema(
            elem("mid", elem("item", "[0..*]", elem("label", text=STRING)))
        )
        out = schema(
            elem("out", elem("entry", "[0..*]", attr("label", STRING)))
        )
        first = ClipMapping(deptstore.source_schema(), mid)
        first.build("dept", "item", var="d")
        first.value("dept/dname/value", "item/label/value")
        second = ClipMapping(mid, out)  # the same `mid` object
        second.build("item", "entry", var="i")
        second.value("item/label/value", "entry/@label")

        calls = []
        real_render = pipeline_module.render_schema

        def counting_render(s):
            calls.append(id(s))
            return real_render(s)

        monkeypatch.setattr(pipeline_module, "render_schema", counting_render)
        Pipeline([first, second])
        assert calls == [id(mid)]

    def test_empty_pipeline_rejected(self):
        with pytest.raises(MappingError):
            Pipeline([])

    def test_stage_validation_failure_raises(self):
        """Feed with no papers: stage 1 emits an empty catalog (valid),
        stage 2 then emits an empty report (valid) — craft a real
        violation instead via an instance missing mandatory content."""
        bad_stage = Pipeline([pub.normalize_mapping()])
        empty_feed = element(
            "feed",
            element("venue", element("vname", text="X"), element("year", text=1), vid=1),
        )
        # Empty output: catalog allows zero publications → still valid.
        out = bad_stage.run(empty_feed, validate_stages=True)
        assert out.findall("publication") == []

    def test_xquery_engine_pipeline(self):
        via_xquery = Pipeline(
            [pub.normalize_mapping(), pub.publish_mapping()], engine="xquery"
        )
        assert via_xquery(pub.feed_instance()) == Pipeline(
            [pub.normalize_mapping(), pub.publish_mapping()]
        )(pub.feed_instance())


class TestPipelineBatch:
    def _feeds(self, count):
        return [pub.feed_instance() for _ in range(count)]

    def test_batch_matches_sequential_runs(self, pipeline):
        from repro.runtime import PlanCache

        feeds = self._feeds(4)
        batch = pipeline.run_batch(feeds, cache=PlanCache())
        assert batch.results == [pipeline(feed) for feed in feeds]

    def test_batch_metrics_per_stage(self, pipeline):
        from repro.runtime import PlanCache

        feeds = self._feeds(3)
        batch = pipeline.run_batch(feeds, cache=PlanCache(), validate=True)
        metrics = batch.metrics
        assert metrics.documents == 3
        assert metrics.validation_violations == 0
        assert [s.index for s in metrics.stages] == [0, 1]
        assert [(s.source_root, s.target_root) for s in metrics.stages] == [
            ("feed", "catalog"), ("catalog", "report"),
        ]
        assert all(s.documents == 3 for s in metrics.stages)
        doc = metrics.to_dict()
        assert len(doc["stages"]) == 2
        # The pipeline seeds the cache from its compiled transformers:
        # every document application is a hit, nothing compiles twice.
        assert doc["plan_cache"]["misses"] == 0
        assert doc["plan_cache"]["hits"] == 6

    def test_batch_with_workers_matches(self, pipeline):
        from repro.runtime import PlanCache

        feeds = self._feeds(4)
        sequential = pipeline.run_batch(feeds, cache=PlanCache())
        parallel = pipeline.run_batch(feeds, workers=2, cache=PlanCache())
        assert sequential.results == parallel.results
