"""Tests for the schema-matching extension."""

from __future__ import annotations

import pytest

from repro.matching import (
    bootstrap_mapping,
    name_similarity,
    score_pair,
    suggest_value_mappings,
    token_similarity,
    tokenize,
    type_compatibility,
)
from repro.scenarios import deptstore
from repro.xsd.dsl import attr, elem, schema
from repro.xsd.schema import ValueNode
from repro.xsd.types import INT, STRING


class TestTokenization:
    def test_camel_case(self):
        assert tokenize("regEmp") == ["reg", "emp"]

    def test_separators(self):
        assert tokenize("avg-sal") == ["avg", "sal"]
        assert tokenize("num_proj") == ["num", "proj"]

    def test_digits_split(self):
        assert tokenize("att2") == ["att", "2"]

    def test_plain(self):
        assert tokenize("department") == ["department"]


class TestSimilarity:
    def test_exact_token(self):
        assert token_similarity("name", "name") == 1.0

    def test_affix_containment(self):
        assert token_similarity("emp", "employee") > 0.6
        assert token_similarity("name", "pname") > 0.6

    def test_unrelated_tokens_score_low(self):
        assert token_similarity("salary", "project") < 0.4

    def test_name_similarity_symmetry(self):
        assert name_similarity("regEmp", "employee") == name_similarity(
            "employee", "regEmp"
        )

    def test_name_similarity_favors_related_names(self):
        related = name_similarity("pname", "name")
        unrelated = name_similarity("pname", "salary")
        assert related > unrelated


class TestTypeCompatibility:
    def test_same_type(self, source_schema):
        pid = source_schema.value("dept/Proj/@pid")
        sal = source_schema.value("dept/regEmp/sal/value")
        assert type_compatibility(pid, sal) == 1.0

    def test_numeric_promotion(self, source_schema):
        target = schema(elem("t", elem("x", "[0..*]", attr("v", "float"))))
        sal = source_schema.value("dept/regEmp/sal/value")
        v = target.value("x/@v")
        assert type_compatibility(sal, v) == 0.8

    def test_cross_kind_discounted(self, source_schema):
        dname = source_schema.value("dept/dname/value")
        pid = source_schema.value("dept/Proj/@pid")
        assert type_compatibility(dname, pid) == 0.5


class TestSuggestions:
    def test_recovers_figure1_value_mappings(self, source_schema, departments_target):
        matches = suggest_value_mappings(source_schema, departments_target)
        pairs = {(str(m.source), str(m.target)) for m in matches}
        assert (
            "source/dept/Proj/pname/text()",
            "target/department/project/@name",
        ) in pairs
        assert (
            "source/dept/regEmp/ename/text()",
            "target/department/employee/@name",
        ) in pairs

    def test_scores_sorted_descending(self, source_schema, departments_target):
        matches = suggest_value_mappings(source_schema, departments_target)
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)

    def test_one_to_one_by_default(self, source_schema, departments_target):
        matches = suggest_value_mappings(source_schema, departments_target)
        assert len({str(m.source) for m in matches}) == len(matches)
        assert len({str(m.target) for m in matches}) == len(matches)

    def test_many_to_many_available(self, source_schema, departments_target):
        all_matches = suggest_value_mappings(
            source_schema, departments_target, one_to_one=False
        )
        assert len(all_matches) >= len(
            suggest_value_mappings(source_schema, departments_target)
        )

    def test_threshold_filters(self, source_schema, departments_target):
        none = suggest_value_mappings(
            source_schema, departments_target, threshold=0.999
        )
        assert none == []

    def test_path_context_disambiguates(self):
        """Two 'name' targets: the project one should pair with pname,
        the employee one with ename — path similarity decides."""
        source = deptstore.source_schema()
        target = deptstore.target_schema_departments()
        pname = source.value("dept/Proj/pname/value")
        project_name = target.value("department/project/@name")
        employee_name = target.value("department/employee/@name")
        assert score_pair(pname, project_name) > score_pair(pname, employee_name)


class TestBootstrap:
    def test_schemas_in_nested_mapping_out(self, source_schema, departments_target):
        matches, generation = bootstrap_mapping(source_schema, departments_target)
        assert len(matches) >= 2
        assert generation.tgd.roots
        # The generated mapping must actually run.
        from repro.executor import execute

        out = execute(generation.tgd, deptstore.source_instance())
        assert out.findall("department")
