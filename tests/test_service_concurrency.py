"""Concurrent clients against one warm plan, over a real socket.

The warm-path contract of the service: N threads hammering
``POST /transform`` with the same registered mapping must each get the
byte-identical response (the engines are pure functions of
plan × document, and the plan is shared), and the plan cache must
account exactly one hit per document — no misses, no duplicate
compiles — however the threads interleave.  ``GET /metrics`` is the
witness: the hit counter's delta equals the request count.

This is the one test module that exercises the real
``ThreadingHTTPServer`` shim (sockets, keep-alive, concurrent handler
threads); everything protocol-level lives in sockets-free
:mod:`tests.test_service` against ``ClipService.dispatch``.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import dumps
from repro.scenarios import deptstore
from repro.service import ClipService, ServiceConfig, make_server
from repro.xml.serialize import to_xml


@pytest.fixture(scope="module")
def server():
    """One live server for the module: ephemeral port, generous
    in-flight ceiling, no deadline (the test machine may be slow)."""
    service = ClipService(ServiceConfig.resolve(
        port=0, deadline=0.0, max_inflight=256, environ={},
    ))
    httpd = make_server(service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    try:
        yield base
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=10)


@pytest.fixture(scope="module")
def warm(server):
    """The mapping registered (and its plan compiled) exactly once."""
    body = dumps(deptstore.mapping_fig3()).encode()
    request = urllib.request.Request(
        f"{server}/mappings", data=body, method="POST"
    )
    with urllib.request.urlopen(request) as response:
        fingerprint = json.loads(response.read())["fingerprint"]
    return server, fingerprint, to_xml(deptstore.source_instance()).encode()


def post_transform(base: str, fingerprint: str, document: bytes) -> bytes:
    request = urllib.request.Request(
        f"{base}/transform?mapping={fingerprint}",
        data=document, method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.status == 200
        return response.read()


def plan_cache_counter(base: str, name: str) -> int:
    with urllib.request.urlopen(f"{base}/metrics", timeout=30) as response:
        text = response.read().decode()
    match = re.search(
        rf"^clip_service_plan_cache_{name}_total (\d+)$", text, re.M
    )
    assert match, f"clip_service_plan_cache_{name}_total missing:\n{text}"
    return int(match.group(1))


@settings(max_examples=5, deadline=None)
@given(threads=st.integers(min_value=2, max_value=8))
def test_hammering_one_warm_plan_is_deterministic_and_all_hits(
    warm, threads
):
    base, fingerprint, document = warm
    requests_per_thread = 3
    total = threads * requests_per_thread
    hits_before = plan_cache_counter(base, "hits")
    misses_before = plan_cache_counter(base, "misses")
    with ThreadPoolExecutor(max_workers=threads) as pool:
        bodies = list(pool.map(
            lambda _: post_transform(base, fingerprint, document),
            range(total),
        ))
    assert len(set(bodies)) == 1, "concurrent responses diverged"
    # Exactly one cache hit per transformed document, zero misses: the
    # plan compiled at registration is the only plan there ever is.
    assert plan_cache_counter(base, "hits") - hits_before == total
    assert plan_cache_counter(base, "misses") - misses_before == 0


def test_concurrent_response_matches_the_sequential_one(warm):
    base, fingerprint, document = warm
    sequential = post_transform(base, fingerprint, document)
    with ThreadPoolExecutor(max_workers=6) as pool:
        bodies = list(pool.map(
            lambda _: post_transform(base, fingerprint, document),
            range(12),
        ))
    assert all(body == sequential for body in bodies)


def test_keep_alive_connection_survives_many_requests(warm):
    """HTTP/1.1 with explicit Content-Length: one connection, many
    requests — the handler never chunks and never force-closes."""
    import http.client

    base, fingerprint, document = warm
    host = base[len("http://"):]
    connection = http.client.HTTPConnection(host, timeout=30)
    try:
        first = None
        for _ in range(5):
            connection.request(
                "POST", f"/transform?mapping={fingerprint}", body=document
            )
            response = connection.getresponse()
            body = response.read()
            assert response.status == 200
            first = body if first is None else first
            assert body == first
    finally:
        connection.close()
