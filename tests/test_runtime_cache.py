"""Plan-cache and batch-runner correctness.

The batch runtime's contract: the once-per-mapping work happens once
(fingerprinted plan cache), document fan-out changes nothing about the
results (parallel == sequential, in order), and every run accounts for
itself (metrics).
"""

from __future__ import annotations

import pytest

from repro import Transformer
from repro.runtime import (
    BatchRunner,
    PlanCache,
    compile_plan,
    default_cache,
    fingerprint,
    get_plan,
    plan_from_tgd,
)
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance


def _docs(count: int, **kwargs) -> list:
    spec = dict(departments=2, projects_per_dept=2, employees_per_dept=5)
    spec.update(kwargs)
    return [
        make_deptstore_instance(DeptstoreSpec(seed=seed, **spec))
        for seed in range(count)
    ]


class TestFingerprint:
    def test_structurally_equal_distinct_objects_share_fingerprint(self):
        assert fingerprint(deptstore.mapping_fig4()) == fingerprint(
            deptstore.mapping_fig4()
        )

    def test_mutation_changes_fingerprint(self):
        mapping = deptstore.mapping_fig4()
        before = fingerprint(mapping)
        mapping.value("dept/Proj/pname/value", "department/project/@name")
        assert fingerprint(mapping) != before

    def test_engine_is_part_of_the_key(self):
        mapping = deptstore.mapping_fig4()
        assert fingerprint(mapping, "tgd") != fingerprint(mapping, "xquery")

    def test_different_mappings_differ(self):
        assert fingerprint(deptstore.mapping_fig3()) != fingerprint(
            deptstore.mapping_fig7()
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            fingerprint(deptstore.mapping_fig3(), "sql")


class TestPlanCache:
    def test_same_mapping_twice_compiles_once(self):
        cache = PlanCache()
        mapping = deptstore.mapping_fig4()
        first = cache.get_or_compile(mapping)
        second = cache.get_or_compile(mapping)
        assert first is second
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 1
        assert len(cache) == 1

    def test_equal_but_distinct_objects_hit(self):
        cache = PlanCache()
        cache.get_or_compile(deptstore.mapping_fig4())
        cache.get_or_compile(deptstore.mapping_fig4())
        stats = cache.stats
        assert (stats.misses, stats.hits) == (1, 1)

    def test_peek_never_touches_counters_or_lru_order(self):
        """``peek`` is the observability read (the service's mapping-
        detail endpoint): it must neither count as a hit/miss nor
        refresh the entry's LRU position."""
        cache = PlanCache(maxsize=2)
        mapping = deptstore.mapping_fig4()
        fp = fingerprint(mapping)
        assert cache.peek(fp) is None  # a miss that is not counted
        plan = cache.get_or_compile(mapping)
        stats_before = cache.stats
        assert cache.peek(fp) is plan
        stats_after = cache.stats
        assert (stats_after.hits, stats_after.misses) == (
            stats_before.hits, stats_before.misses,
        )
        # LRU order: peeking fig4 must NOT save it from eviction once
        # two fresher plans arrive.
        cache.get_or_compile(deptstore.mapping_fig3())
        cache.peek(fp)
        cache.get_or_compile(deptstore.mapping_fig7())
        assert cache.peek(fp) is None
        assert cache.stats.evictions == 1

    def test_mutated_mapping_misses(self):
        cache = PlanCache()
        mapping = deptstore.mapping_fig3()
        cache.get_or_compile(mapping)
        mapping.value("dept/regEmp/sal/value", "department/employee/works-in/value")
        cache.get_or_compile(mapping)
        stats = cache.stats
        assert stats.misses == 2
        assert stats.hits == 0

    def test_engines_cached_separately(self):
        cache = PlanCache()
        mapping = deptstore.mapping_fig4()
        a = cache.get_or_compile(mapping, "tgd")
        b = cache.get_or_compile(mapping, "xquery")
        assert a is not b
        assert cache.stats.misses == 2

    def test_lru_eviction_is_counted(self):
        cache = PlanCache(maxsize=1)
        cache.get_or_compile(deptstore.mapping_fig3())
        cache.get_or_compile(deptstore.mapping_fig4())
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        # fig3 was evicted: asking again is a miss.
        cache.get_or_compile(deptstore.mapping_fig3())
        assert cache.stats.misses == 3

    def test_put_seeds_the_cache(self):
        cache = PlanCache()
        mapping = deptstore.mapping_fig4()
        transformer = Transformer(mapping)
        fp = fingerprint(mapping, "tgd")
        cache.put(plan_from_tgd(transformer.tgd, "tgd", fp=fp))
        assert fp in cache
        plan = cache.get_or_compile(mapping)
        assert cache.stats.misses == 0
        assert plan(deptstore.source_instance()) == transformer(
            deptstore.source_instance()
        )

    def test_default_cache_shared_by_get_plan(self):
        mapping = deptstore.mapping_fig4()
        assert get_plan(mapping) is get_plan(mapping)
        assert fingerprint(mapping) in default_cache()

    def test_compiled_plan_matches_transformer(self):
        mapping = deptstore.mapping_fig7()
        instance = deptstore.source_instance()
        for engine in ("tgd", "xquery"):
            plan = compile_plan(mapping, engine)
            assert plan(instance) == Transformer(mapping, engine=engine)(instance)

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestBatchRunner:
    def test_results_match_naive_transformer_in_order(self):
        mapping = deptstore.mapping_fig4()
        docs = _docs(5)
        batch = BatchRunner(mapping, cache=PlanCache()).run(docs)
        expected = [Transformer(mapping)(doc) for doc in docs]
        assert list(batch) == expected

    def test_parallel_output_identical_and_identically_ordered(self):
        mapping = deptstore.mapping_fig4()
        docs = _docs(8)
        sequential = BatchRunner(mapping, workers=1, cache=PlanCache()).run(docs)
        parallel = BatchRunner(mapping, workers=2, cache=PlanCache()).run(docs)
        assert sequential.results == parallel.results
        assert parallel.metrics.documents == len(docs)

    def test_parallel_grouping_engine_agrees(self):
        mapping = deptstore.mapping_fig7()
        docs = _docs(4, project_name_pool=2)
        sequential = BatchRunner(mapping, workers=1, cache=PlanCache()).run(docs)
        parallel = BatchRunner(mapping, workers=3, cache=PlanCache()).run(docs)
        assert sequential.results == parallel.results

    def test_accepts_an_iterator(self):
        mapping = deptstore.mapping_fig4()
        docs = _docs(4)
        batch = BatchRunner(mapping, cache=PlanCache()).run(iter(docs))
        assert len(batch) == 4

    def test_metrics_one_miss_rest_hits(self):
        mapping = deptstore.mapping_fig4()
        docs = _docs(6)
        batch = BatchRunner(mapping, cache=PlanCache()).run(docs)
        metrics = batch.metrics
        assert metrics.cache_misses == 1
        assert metrics.cache_hits == len(docs) - 1
        assert metrics.documents == len(docs)
        assert metrics.execute_seconds > 0
        assert metrics.wall_seconds >= metrics.execute_seconds

    def test_metrics_dict_schema(self):
        mapping = deptstore.mapping_fig4()
        batch = BatchRunner(mapping, cache=PlanCache(), validate=True).run(_docs(2))
        doc = batch.metrics.to_dict()
        assert doc["format"] == "clip-batch-metrics"
        assert doc["version"] == 2
        assert doc["documents"] == 2
        assert doc["plan_cache"]["hits"] == 1
        assert doc["plan_cache"]["misses"] == 1
        assert doc["validation_violations"] == 0
        assert set(doc["timings"]) == {
            "compile_seconds", "execute_seconds", "wall_seconds",
        }

    def test_empty_batch(self):
        batch = BatchRunner(
            deptstore.mapping_fig4(), workers=2, cache=PlanCache()
        ).run([])
        assert list(batch) == []
        assert batch.metrics.documents == 0

    def test_runners_share_plans_through_a_cache(self):
        cache = PlanCache()
        mapping = deptstore.mapping_fig4()
        BatchRunner(mapping, cache=cache).run(_docs(2))
        BatchRunner(deptstore.mapping_fig4(), cache=cache).run(_docs(2))
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 3

    @pytest.mark.parametrize("workers", [0, -1, 1.5, True])
    def test_bad_workers_rejected(self, workers):
        with pytest.raises(ValueError):
            BatchRunner(deptstore.mapping_fig4(), workers=workers)

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(deptstore.mapping_fig4(), engine="sparql")


class TestCanonicalizedKeys:
    """Canonical cache keys: alpha-renamed mappings share one plan."""

    @staticmethod
    def _fig3_renamed():
        from repro.core.mapping import ClipMapping

        clip = ClipMapping(
            deptstore.source_schema(), deptstore.target_schema_fig3()
        )
        clip.build("dept/regEmp", "department/employee", var="z",
                   condition="$z.sal.value > 11000")
        clip.value("dept/regEmp/ename/value", "department/employee/@name")
        return clip

    def test_structural_fingerprints_differ_canonical_agree(self):
        from repro.runtime import canonical_fingerprint

        original = deptstore.mapping_fig3()
        renamed = self._fig3_renamed()
        assert fingerprint(original) != fingerprint(renamed)
        assert canonical_fingerprint(original) == canonical_fingerprint(
            renamed
        )

    def test_fingerprint_for_follows_the_canonicalize_flag(self):
        plain = PlanCache()
        canonical = PlanCache(canonicalize=True)
        original = deptstore.mapping_fig3()
        renamed = self._fig3_renamed()
        assert plain.fingerprint_for(original) != plain.fingerprint_for(
            renamed
        )
        assert canonical.fingerprint_for(
            original
        ) == canonical.fingerprint_for(renamed)

    def test_renamed_variant_compiles_once_and_counts_canonical_hit(self):
        cache = PlanCache(canonicalize=True)
        first = cache.get_or_compile(deptstore.mapping_fig3())
        second = cache.get_or_compile(self._fig3_renamed())
        assert first is second, "alpha-renamed variant recompiled"
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.canonical_misses == 1
        assert stats.canonical_hits == 1

    def test_renamed_variants_share_byte_identical_output(self):
        """Soundness of the shared plan: the variant's own compile and
        the canonically shared plan serialize identically."""
        from repro.xml.serialize import to_xml

        instance = deptstore.source_instance()
        shared = PlanCache(canonicalize=True)
        shared.get_or_compile(deptstore.mapping_fig3())
        via_shared = shared.get_or_compile(self._fig3_renamed())(instance)
        own = PlanCache().get_or_compile(self._fig3_renamed())(instance)
        assert to_xml(via_shared) == to_xml(own)

    def test_structural_cache_keeps_variants_apart(self):
        cache = PlanCache()
        first = cache.get_or_compile(deptstore.mapping_fig3())
        second = cache.get_or_compile(self._fig3_renamed())
        assert first is not second
        stats = cache.stats
        assert stats.misses == 2
        assert stats.canonical_hits == stats.canonical_misses == 0

    def test_explicit_fp_skips_canonical_counting_by_default(self):
        cache = PlanCache(canonicalize=True)
        mapping = deptstore.mapping_fig3()
        fp = cache.fingerprint_for(mapping)
        cache.get_or_compile(mapping, fp=fp)
        cache.get_or_compile(mapping, fp=fp)
        stats = cache.stats
        assert stats.canonical_hits == stats.canonical_misses == 0
        # ...and opts in when the caller says the key is canonical.
        cache.get_or_compile(mapping, fp=fp, count_canonical=True)
        assert cache.stats.canonical_hits == 1

    def test_where_conjunct_order_is_canonicalized(self):
        """The normal form sorts where-conjuncts: mappings differing
        only in filter-condition order share a canonical key."""
        from repro.core.mapping import ClipMapping
        from repro.runtime import canonical_fingerprint
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import INT, STRING

        src = schema(elem(
            "S", elem("row", "[0..*]", attr("a", INT), attr("b", INT)),
        ))
        tgt = schema(elem(
            "T", elem("out", "[0..*]", attr("x", INT)),
        ))

        def make(condition):
            clip = ClipMapping(src, tgt)
            clip.build("row", "out", var="r", condition=condition)
            clip.value("row/@a", "out/@x")
            return clip

        one = make("$r.@a > 1 and $r.@b > 2")
        other = make("$r.@b > 2 and $r.@a > 1")
        assert canonical_fingerprint(one) == canonical_fingerprint(other)

    def test_environment_flag_resolution(self, monkeypatch):
        from repro.runtime.cache import CANONICALIZE_ENV, resolve_canonicalize

        monkeypatch.delenv(CANONICALIZE_ENV, raising=False)
        assert resolve_canonicalize() is False
        assert resolve_canonicalize(True) is True
        monkeypatch.setenv(CANONICALIZE_ENV, "1")
        assert resolve_canonicalize() is True
        assert resolve_canonicalize(False) is False
        assert PlanCache(canonicalize=None).canonicalize is True
        monkeypatch.setenv(CANONICALIZE_ENV, "off")
        assert resolve_canonicalize() is False
        monkeypatch.setenv(CANONICALIZE_ENV, "sideways")
        with pytest.raises(ValueError):
            resolve_canonicalize()
