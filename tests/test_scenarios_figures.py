"""Integration tests: every paper figure, end to end, on both engines.

For each figure of the paper we (a) check the Clip mapping is valid,
(b) compile it to a nested tgd, (c) execute the tgd directly, (d) emit
XQuery and run it through the interpreter, and (e) compare both results
against the output printed in the paper — plus schema-validity of the
produced instance.
"""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.core.validity import check
from repro.executor import execute
from repro.scenarios import deptstore
from repro.scenarios.deptstore import FIGURES, scenario, source_instance
from repro.xquery import emit_xquery, run_query
from repro.xsd.validate import validate


@pytest.fixture(scope="module")
def paper_instance():
    return source_instance()


@pytest.mark.parametrize("fig", [f.figure for f in FIGURES])
def test_figure_mapping_is_valid(fig):
    report = check(scenario(fig).make_mapping())
    assert report.is_valid, str(report)


@pytest.mark.parametrize("fig", [f.figure for f in FIGURES])
def test_figure_executor_matches_paper(fig, paper_instance):
    fs = scenario(fig)
    tgd = compile_clip(fs.make_mapping())
    out = execute(tgd, paper_instance)
    expected = fs.expected()
    if fs.ordered:
        assert out == expected
    else:
        assert out.equals_canonically(expected)


@pytest.mark.parametrize("fig", [f.figure for f in FIGURES])
def test_figure_xquery_matches_paper(fig, paper_instance):
    fs = scenario(fig)
    tgd = compile_clip(fs.make_mapping())
    out = run_query(emit_xquery(tgd), paper_instance)
    expected = fs.expected()
    if fs.ordered:
        assert out == expected
    else:
        assert out.equals_canonically(expected)


@pytest.mark.parametrize("fig", [f.figure for f in FIGURES])
def test_figure_engines_agree_exactly(fig, paper_instance):
    fs = scenario(fig)
    tgd = compile_clip(fs.make_mapping())
    assert execute(tgd, paper_instance) == run_query(emit_xquery(tgd), paper_instance)


@pytest.mark.parametrize("fig", [f.figure for f in FIGURES])
def test_figure_output_conforms_to_target_schema(fig, paper_instance):
    fs = scenario(fig)
    clip = fs.make_mapping()
    out = execute(compile_clip(clip), paper_instance)
    violations = validate(out, clip.target)
    assert violations == [], [str(v) for v in violations]


def test_source_instance_conforms_to_source_schema(paper_instance):
    assert validate(paper_instance, deptstore.source_schema()) == []


# -- figure-specific behaviours discussed in the text ------------------------


def test_fig3_minimum_cardinality_single_department(paper_instance):
    """'We adopt a minimum-cardinality principle': one department, not
    one per employee."""
    out = execute(compile_clip(deptstore.mapping_fig3()), paper_instance)
    assert len(out.findall("department")) == 1
    names = [e.attribute("name") for e in out.findall("department")[0].findall("employee")]
    assert names == ["Andrew Clarence", "Richard Dawson", "Steven Aiking"]


def test_fig4_salary_filter_is_strict(paper_instance):
    """Jim Bellish earns exactly 11000 and must be excluded (>, not >=)."""
    out = execute(compile_clip(deptstore.mapping_fig4()), paper_instance)
    names = {e.attribute("name") for d in out for e in d.findall("employee")}
    assert "Jim Bellish" not in names


def test_fig4_no_arc_repeats_employees_everywhere(paper_instance):
    """'Omitting the context arc causes all employees … to appear,
    repeated, within all departments.'"""
    out = execute(
        compile_clip(deptstore.mapping_fig4(context_arc=False)), paper_instance
    )
    departments = out.findall("department")
    assert len(departments) == 2
    for dept in departments:
        names = [e.attribute("name") for e in dept.findall("employee")]
        assert names == ["Andrew Clarence", "Richard Dawson", "Steven Aiking"]


def test_fig6_without_join_computes_per_dept_cartesian(paper_instance):
    """'If we omit the join condition, then a full Cartesian product is
    computed' — each Proj with all regEmps of its dept."""
    clip = deptstore.mapping_fig6(join_condition=False)
    out = execute(compile_clip(clip), paper_instance)
    # ICT: 2 Projs × 4 regEmps; Marketing: 2 × 3 = 14 pairs in total.
    assert len(out.findall("project-emp")) == 2 * 4 + 2 * 3


def test_fig6_without_outer_node_computes_global_cartesian(paper_instance):
    """'If we also omit the top-level build node, then Clip computes the
    overall Cartesian product … in the whole document.'"""
    clip = deptstore.mapping_fig6(join_condition=False, outer_context=False)
    out = execute(compile_clip(clip), paper_instance)
    assert len(out.findall("project-emp")) == 4 * 7  # 4 Projs × 7 regEmps


def test_fig7_group_count_is_distinct_pnames(paper_instance):
    """'as many project elements as there are distinct values of project
    names in the source instance'."""
    out = execute(compile_clip(deptstore.mapping_fig7()), paper_instance)
    names = [p.attribute("name") for p in out.findall("project")]
    assert names == ["Appliances", "Robotics", "Brand promotion"]


def test_fig7_employees_follow_their_own_departments_projects(paper_instance):
    """Mark Tane (Marketing, pid 32) lands in Appliances; Richard Dawson
    (Marketing, pid 1 = Brand promotion) must not."""
    out = execute(compile_clip(deptstore.mapping_fig7()), paper_instance)
    appliances = out.findall("project")[0]
    names = [e.attribute("name") for e in appliances.findall("employee")]
    assert names == ["John Smith", "Andrew Clarence", "Mark Tane"]


def test_fig8_inverts_hierarchy(paper_instance):
    out = execute(compile_clip(deptstore.mapping_fig8()), paper_instance)
    by_project = {
        p.attribute("name"): [d.attribute("name") for d in p.findall("department")]
        for p in out.findall("project")
    }
    assert by_project == {
        "Appliances": ["ICT", "Marketing"],
        "Robotics": ["ICT"],
        "Brand promotion": ["Marketing"],
    }


def test_fig9_aggregate_values(paper_instance):
    out = execute(compile_clip(deptstore.mapping_fig9()), paper_instance)
    ict, marketing = out.findall("department")
    assert ict.attribute("name") == "ICT"
    assert ict.attribute("numProj") == 2
    assert ict.attribute("numEmps") == 4
    assert ict.attribute("avg-sal") == 10875
    assert marketing.attribute("numProj") == 2
    assert marketing.attribute("numEmps") == 3
    assert marketing.attribute("avg-sal") == 20000


def test_fig5_solves_the_section1_motivating_problem(paper_instance):
    """The Section I desired output: containment and siblings preserved."""
    out = execute(compile_clip(deptstore.mapping_fig1_desired()), paper_instance)
    assert out == deptstore.expected_fig5()
