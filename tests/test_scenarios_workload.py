"""Tests for the synthetic workload generators and published scenarios."""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore, generic
from repro.scenarios.published import TABLE1_ROWS
from repro.scenarios.workload import (
    DeptstoreSpec,
    GenericSpec,
    make_deptstore_instance,
    make_generic_instance,
)
from repro.xsd.validate import validate


class TestDeptstoreWorkload:
    def test_instances_conform_to_the_source_schema(self):
        spec = DeptstoreSpec(departments=6, projects_per_dept=3, employees_per_dept=9)
        instance = make_deptstore_instance(spec)
        assert validate(instance, deptstore.source_schema()) == []

    def test_deterministic_in_seed(self):
        assert make_deptstore_instance(DeptstoreSpec(seed=3)) == make_deptstore_instance(
            DeptstoreSpec(seed=3)
        )
        assert make_deptstore_instance(DeptstoreSpec(seed=3)) != make_deptstore_instance(
            DeptstoreSpec(seed=4)
        )

    def test_fanout_controls_shape(self):
        spec = DeptstoreSpec(departments=4, projects_per_dept=2, employees_per_dept=5)
        instance = make_deptstore_instance(spec)
        depts = instance.findall("dept")
        assert len(depts) == 4
        assert all(len(d.findall("Proj")) == 2 for d in depts)
        assert all(len(d.findall("regEmp")) == 5 for d in depts)

    def test_total_elements_estimate(self):
        spec = DeptstoreSpec(departments=3, projects_per_dept=2, employees_per_dept=2)
        assert make_deptstore_instance(spec).size() == spec.total_elements

    def test_name_pool_creates_homonyms(self):
        spec = DeptstoreSpec(departments=10, projects_per_dept=5, project_name_pool=2)
        instance = make_deptstore_instance(spec)
        names = {
            p.find("pname").text
            for d in instance.findall("dept")
            for p in d.findall("Proj")
        }
        assert len(names) <= 2

    @pytest.mark.parametrize("fig", [f.figure for f in deptstore.FIGURES])
    def test_every_figure_mapping_runs_on_synthetic_data(self, fig):
        instance = make_deptstore_instance(DeptstoreSpec(departments=4))
        scenario = deptstore.scenario(fig)
        clip = scenario.make_mapping()
        out = execute(compile_clip(clip), instance)
        assert validate(out, clip.target) == []


class TestGenericWorkload:
    def test_conforms_to_fig10_schema(self):
        instance = make_generic_instance(GenericSpec(a_count=5))
        assert validate(instance, generic.source_schema()) == []

    def test_fanout(self):
        instance = make_generic_instance(GenericSpec(a_count=3, b_per_a=2, d_per_a=4))
        a_nodes = instance.findall("A")
        assert len(a_nodes) == 3
        assert all(len(a.findall("B")) == 2 for a in a_nodes)
        assert all(len(a.findall("D")) == 4 for a in a_nodes)


class TestPublishedScenarios:
    @pytest.mark.parametrize("factory", TABLE1_ROWS, ids=lambda f: f.__name__)
    def test_witnesses_conform_to_their_schemas(self, factory):
        example = factory()
        assert validate(example.witness, example.source) == []

    @pytest.mark.parametrize("factory", TABLE1_ROWS, ids=lambda f: f.__name__)
    def test_value_mapping_counts_match_table1(self, factory):
        example = factory()
        assert len(example.value_mappings) == example.paper_value_mappings
