"""Unit tests for atomic types."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.xsd.types import (
    BOOLEAN,
    FLOAT,
    INT,
    STRING,
    type_by_name,
    type_by_xsd_name,
)


class TestParsing:
    def test_int_parses_with_leading_zeros(self):
        assert INT.parse("0032") == 32

    def test_int_rejects_garbage(self):
        with pytest.raises(SchemaError):
            INT.parse("12a")

    def test_float_parses(self):
        assert FLOAT.parse("10.5") == 10.5

    def test_boolean_lexical_forms(self):
        assert BOOLEAN.parse("true") is True
        assert BOOLEAN.parse("0") is False
        with pytest.raises(SchemaError):
            BOOLEAN.parse("yes")

    def test_string_is_identity(self):
        assert STRING.parse(" padded ") == " padded "


class TestValidation:
    def test_int_accepts_int_not_bool(self):
        assert INT.validates(5)
        assert not INT.validates(True)
        assert not INT.validates("5")

    def test_float_promotes_int(self):
        assert FLOAT.validates(5)
        assert FLOAT.validates(5.5)
        assert not FLOAT.validates(True)

    def test_string_rejects_numbers(self):
        assert STRING.validates("x")
        assert not STRING.validates(5)

    def test_boolean_strict(self):
        assert BOOLEAN.validates(False)
        assert not BOOLEAN.validates(0)


class TestLookup:
    def test_by_name_case_insensitive(self):
        assert type_by_name("string") is STRING
        assert type_by_name("Int") is INT

    def test_by_name_unknown(self):
        with pytest.raises(SchemaError):
            type_by_name("decimal128")

    def test_by_xsd_name_with_prefix(self):
        assert type_by_xsd_name("xs:integer") is INT
        assert type_by_xsd_name("string") is STRING
        assert type_by_xsd_name("xs:double") is FLOAT

    def test_by_xsd_name_aliases(self):
        assert type_by_xsd_name("xs:ID") is STRING
        assert type_by_xsd_name("long") is INT

    def test_by_xsd_name_unknown(self):
        with pytest.raises(SchemaError):
            type_by_xsd_name("xs:duration")
