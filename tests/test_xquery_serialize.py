"""Unit tests for the XQuery serializer."""

from __future__ import annotations

import pytest

from repro.errors import XQueryError
from repro.xquery import ast
from repro.xquery.serialize import serialize


class TestInlineForms:
    def test_literals(self):
        assert serialize(ast.StringLit("hi")) == '"hi"'
        assert serialize(ast.StringLit('say "hi"')) == '"say ""hi"""'
        assert serialize(ast.NumberLit(42)) == "42"
        assert serialize(ast.BoolLit(True)) == "true()"

    def test_variable_and_paths(self):
        assert serialize(ast.VarRef("d")) == "$d"
        assert serialize(ast.path(ast.VarRef("r"), "sal", "text()")) == "$r/sal/text()"
        assert serialize(ast.path(ast.DocRoot(), "source", "dept", "@pid")) == (
            "source/dept/@pid"
        )

    def test_comparison_and_and(self):
        expr = ast.AndExpr(
            (
                ast.ComparisonExpr(ast.VarRef("a"), "=", ast.NumberLit(1)),
                ast.ComparisonExpr(ast.VarRef("b"), ">", ast.NumberLit(2)),
            )
        )
        assert serialize(expr) == "$a = 1 and $b > 2"

    def test_some_satisfies(self):
        expr = ast.SomeExpr(
            "m",
            ast.path(ast.VarRef("d"), "Proj"),
            ast.IsExpr(ast.VarRef("m"), ast.VarRef("p")),
        )
        assert serialize(expr) == "some $m in $d/Proj satisfies $m is $p"

    def test_function_and_arithmetic(self):
        expr = ast.FunctionCall("count", (ast.path(ast.VarRef("d"), "Proj"),))
        assert serialize(expr) == "count($d/Proj)"
        arith = ast.ArithExpr(ast.NumberLit(1), "div", ast.NumberLit(2))
        assert serialize(arith) == "(1 div 2)"


class TestBlockForms:
    def test_flwor_layout(self):
        flwor = ast.Flwor(
            (
                ast.ForClause("d", ast.path(ast.DocRoot(), "source", "dept")),
                ast.WhereClause(
                    ast.ComparisonExpr(
                        ast.path(ast.VarRef("d"), "dname", "text()"),
                        "=",
                        ast.StringLit("ICT"),
                    )
                ),
            ),
            ast.VarRef("d"),
        )
        assert serialize(flwor) == (
            "for $d in source/dept\n"
            'where $d/dname/text() = "ICT"\n'
            "return $d"
        )

    def test_let_with_nested_flwor(self):
        flwor = ast.Flwor(
            (
                ast.LetClause(
                    "ctx",
                    ast.Flwor(
                        (ast.ForClause("p", ast.path(ast.DocRoot(), "s", "p")),),
                        ast.VarRef("p"),
                    ),
                ),
            ),
            ast.VarRef("ctx"),
        )
        text = serialize(flwor)
        assert text.startswith("let $ctx := (")
        assert "  for $p in s/p" in text

    def test_self_closing_constructor(self):
        ctor = ast.ElementCtor(
            "employee", (ast.AttributeCtor("name", ast.VarRef("n")),)
        )
        assert serialize(ctor) == '<employee name="{$n}"/>'

    def test_constructor_with_content(self):
        ctor = ast.ElementCtor("target", (), (ast.NumberLit(1), ast.NumberLit(2)))
        assert serialize(ctor) == "<target> {\n  1,\n  2\n} </target>"

    def test_sequence_layout(self):
        seq = ast.SequenceExpr((ast.NumberLit(1), ast.NumberLit(2)))
        assert serialize(seq) == "(\n  1,\n  2\n)"

    def test_unserializable_rejected(self):
        with pytest.raises(XQueryError):
            serialize(object())  # type: ignore[arg-type]
