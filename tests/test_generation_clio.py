"""Unit tests for the Clio baseline generator."""

from __future__ import annotations

from repro.core.mapping import ValueMapping
from repro.executor import execute
from repro.generation import generate_clio
from repro.scenarios import deptstore, generic


def _fig4_vms(source, target):
    return [
        ValueMapping(
            [source.value("dept/regEmp/ename/value")],
            target.value("department/employee/@name"),
        )
    ]


class TestSection5aExample:
    def test_emitted_tgd_matches_paper(self, source_schema, departments_target):
        """Section V-A prints the tgd Clio emits for the Figure 4 value
        mapping: the chased join over Proj."""
        result = generate_clio(source_schema, departments_target,
                               _fig4_vms(source_schema, departments_target))
        text = str(result.tgd)
        assert "∀ d ∈ source.dept" in text
        assert "r ∈ d.regEmp" in text
        assert "p ∈ d.Proj" in text
        assert ".@pid = " in text  # the chase-introduced join condition
        assert "∃ d′ ∈ target.department, e′ ∈ d′.employee" in text
        assert "e′.@name = r.ename.value" in text

    def test_without_chase_no_join_condition(self, source_schema, departments_target):
        result = generate_clio(
            source_schema,
            departments_target,
            _fig4_vms(source_schema, departments_target),
            use_chase=False,
        )
        (mapping,) = result.tgd.roots
        assert mapping.where == ()
        assert [g.var for g in mapping.source_gens] == ["d", "r"]


class TestFigure1Problem:
    def test_clio_encloses_each_node_in_its_own_department(
        self, source_schema, departments_target, source_instance
    ):
        """The motivating failure: Clio's output has one department per
        project and per employee."""
        vms = [
            ValueMapping(
                [source_schema.value("dept/Proj/pname/value")],
                departments_target.value("department/project/@name"),
            ),
            ValueMapping(
                [source_schema.value("dept/regEmp/ename/value")],
                departments_target.value("department/employee/@name"),
            ),
        ]
        result = generate_clio(source_schema, departments_target, vms)
        out = execute(result.tgd, source_instance)
        departments = out.findall("department")
        assert len(departments) == 4 + 7  # one per Proj + one per joined regEmp
        assert all(len(d.children) == 1 for d in departments)

    def test_the_two_mappings_cannot_nest(self, source_schema, departments_target):
        vms = [
            ValueMapping(
                [source_schema.value("dept/Proj/pname/value")],
                departments_target.value("department/project/@name"),
            ),
            ValueMapping(
                [source_schema.value("dept/regEmp/ename/value")],
                departments_target.value("department/employee/@name"),
            ),
        ]
        result = generate_clio(source_schema, departments_target, vms)
        assert len(result.forest) == 2
        assert all(not node.children for node in result.forest)


class TestFigure10:
    def test_flat_roots_ab_and_ad(self, generic_source, generic_target):
        vms = generic.value_mappings_bd(generic_source, generic_target)
        result = generate_clio(generic_source, generic_target, vms)
        names = sorted(a.skeleton.shorthand() for a in result.emitted)
        assert names == ["{A-B} -> {F-G}", "{A-D} -> {F-G}"]
        assert len(result.tgd.roots) == 2

    def test_each_root_quantifies_f_per_iteration(self, generic_source, generic_target):
        vms = generic.value_mappings_bd(generic_source, generic_target)
        result = generate_clio(generic_source, generic_target, vms)
        instance = generic.sample_instance()
        out = execute(result.tgd, instance)
        # A1 has 2 Bs + 1 D; A2 has 1 B + 2 Ds → 3 + 3 F elements.
        assert len(out.findall("F")) == 6


class TestNestingRefinement:
    def test_nested_mappings_share_target_construction(
        self, source_schema, source_instance
    ):
        """With a dept-level value mapping present, the employee mapping
        nests inside the department mapping ([2])."""
        target = deptstore.target_schema_aggregates()
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import STRING

        target = schema(
            elem(
                "target",
                elem(
                    "department",
                    "[1..*]",
                    attr("name", STRING, required=False),
                    elem("employee", "[0..*]", attr("name", STRING, required=False)),
                ),
            )
        )
        vms = [
            ValueMapping(
                [source_schema.value("dept/dname/value")],
                target.value("department/@name"),
            ),
            ValueMapping(
                [source_schema.value("dept/regEmp/ename/value")],
                target.value("department/employee/@name"),
            ),
        ]
        result = generate_clio(source_schema, target, vms)
        assert len(result.forest) == 1
        assert len(result.forest[0].children) == 1
        out = execute(result.tgd, source_instance)
        departments = out.findall("department")
        assert [d.attribute("name") for d in departments] == ["ICT", "Marketing"]
        assert len(departments[0].findall("employee")) == 4

    def test_nest_false_emits_flat(self, source_schema):
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import STRING

        target = schema(
            elem(
                "target",
                elem(
                    "department",
                    "[1..*]",
                    attr("name", STRING, required=False),
                    elem("employee", "[0..*]", attr("name", STRING, required=False)),
                ),
            )
        )
        vms = [
            ValueMapping(
                [source_schema.value("dept/dname/value")],
                target.value("department/@name"),
            ),
            ValueMapping(
                [source_schema.value("dept/regEmp/ename/value")],
                target.value("department/employee/@name"),
            ),
        ]
        result = generate_clio(source_schema, target, vms, nest=False)
        assert len(result.tgd.roots) == 2
