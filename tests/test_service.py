"""The HTTP mapping service (:mod:`repro.service`), sockets-free.

:meth:`ClipService.dispatch` is the whole request surface — routing,
auth, deadlines, error envelopes, metrics — so everything here runs
in-process against it.  The real ``ThreadingHTTPServer`` shim is
covered by :mod:`tests.test_service_concurrency` (threads against a
bound socket) and by the CI smoke leg (a ``serve`` subprocess round-
tripped against CLI output).

The load-bearing contract: a transform served over HTTP is
byte-identical to what the CLI writes for the same mapping, document,
engine and execution mode.  The service is a deployment surface, not a
second implementation — it routes through the same
:class:`~repro.runtime.batch.BatchRunner` and the same shared
:class:`~repro.runtime.cache.PlanCache` the CLI uses.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import cli
from repro.core.mapping import ClipMapping
from repro.io import dumps
from repro.runtime import BatchMetrics, Fault, FaultInjector, Trace
from repro.scenarios import deptstore
from repro.service import (
    SIGNATURE_HEADER,
    ClipService,
    ServiceConfig,
    error_status,
    sign_body,
    status_for_failure,
    verify_signature,
)
from repro.service.config import resolve_setting
from repro.xml.serialize import to_xml


def make_service(**overrides) -> ClipService:
    """A service resolved against an *empty* environment, so ambient
    ``CLIP_SERVICE_*`` variables never leak into a test."""
    injector = overrides.pop("injector", None)
    return ClipService(
        ServiceConfig.resolve(environ={}, **overrides), injector=injector
    )


def register(service: ClipService, mapping: ClipMapping, query: str = "") -> str:
    response = service.dispatch(
        "POST", f"/mappings{query}", {}, dumps(mapping).encode()
    )
    assert response.status in (200, 201), response.body
    return json.loads(response.body)["fingerprint"]


@pytest.fixture
def service():
    return make_service()


@pytest.fixture
def mapping():
    return deptstore.mapping_fig3()


@pytest.fixture
def source_xml():
    return to_xml(deptstore.source_instance())


def invalid_mapping() -> ClipMapping:
    """A mapping that fails the Section III validity check (an unbound
    condition variable), so registration must refuse to compile it."""
    clip = ClipMapping(
        deptstore.source_schema(), deptstore.target_schema_departments()
    )
    clip.build("dept", "department", var="d", condition="$zz.x = 1")
    return clip


def cli_run_output(tmp_path, mapping: ClipMapping, source_xml: str,
                   *flags: str) -> bytes:
    """What ``python -m repro run`` writes for these inputs — the
    byte-identity reference for the service's transform response."""
    mapping_path = tmp_path / "mapping.json"
    source_path = tmp_path / "source.xml"
    out_path = tmp_path / "out.xml"
    mapping_path.write_text(dumps(mapping), encoding="utf-8")
    source_path.write_text(source_xml, encoding="utf-8")
    assert cli.main(
        ["run", str(mapping_path), str(source_path), "-o", str(out_path)]
        + list(flags)
    ) == 0
    return out_path.read_bytes()


class TestRegistration:
    def test_first_registration_compiles_and_reports_miss(
        self, service, mapping
    ):
        response = service.dispatch(
            "POST", "/mappings", {}, dumps(mapping).encode()
        )
        assert response.status == 201
        doc = json.loads(response.body)
        assert doc["format"] == "clip-service-mapping"
        assert doc["cache"] == "miss"
        assert doc["valid"] is True
        assert len(doc["fingerprint"]) == 64

    def test_second_registration_is_a_cache_hit(self, service, mapping):
        body = dumps(mapping).encode()
        first = service.dispatch("POST", "/mappings", {}, body)
        second = service.dispatch("POST", "/mappings", {}, body)
        assert first.status == 201
        assert second.status == 200
        assert json.loads(second.body)["cache"] == "hit"
        assert (
            json.loads(second.body)["fingerprint"]
            == json.loads(first.body)["fingerprint"]
        )

    def test_second_registration_hit_is_visible_in_metrics(
        self, service, mapping
    ):
        body = dumps(mapping).encode()
        service.dispatch("POST", "/mappings", {}, body)
        service.dispatch("POST", "/mappings", {}, body)
        text = service.dispatch("GET", "/metrics").body.decode()
        assert "clip_service_plan_cache_hits_total 1" in text
        assert "clip_service_plan_cache_misses_total 1" in text

    def test_distinct_exec_modes_register_distinct_fingerprints(
        self, service, mapping
    ):
        interp = register(service, mapping)
        codegen = register(service, mapping, "?exec_mode=codegen")
        assert interp != codegen
        listing = json.loads(service.dispatch("GET", "/mappings").body)
        assert {entry["fingerprint"] for entry in listing["mappings"]} == {
            interp, codegen,
        }

    def test_invalid_mapping_is_refused_with_422(self, service):
        response = service.dispatch(
            "POST", "/mappings", {}, dumps(invalid_mapping()).encode()
        )
        assert response.status == 422
        doc = json.loads(response.body)
        assert doc["error"] == "InvalidMappingError"
        assert doc["format"] == "clip-service-error"

    def test_malformed_mapping_json_is_400(self, service):
        response = service.dispatch("POST", "/mappings", {}, b"{nope")
        assert response.status == 400

    def test_unknown_engine_is_400(self, service, mapping):
        response = service.dispatch(
            "POST", "/mappings?engine=prolog", {}, dumps(mapping).encode()
        )
        assert response.status == 400

    def test_mapping_detail_reports_plan_without_skewing_stats(
        self, service, mapping
    ):
        fp = register(service, mapping)
        before = service.cache.stats
        detail = json.loads(
            service.dispatch("GET", f"/mappings/{fp}").body
        )
        after = service.cache.stats
        assert detail["cached"] is True
        assert detail["plan"]["optimize"] is True
        assert (after.hits, after.misses) == (before.hits, before.misses)

    def test_unknown_mapping_detail_is_404(self, service):
        assert service.dispatch("GET", "/mappings/feedface").status == 404


class TestTransformByteIdentity:
    FIGURES = {
        "fig3": deptstore.mapping_fig3,
        "fig6": deptstore.mapping_fig6,
        "fig7": deptstore.mapping_fig7,
    }

    @pytest.mark.parametrize("figure", sorted(FIGURES))
    @pytest.mark.parametrize("exec_mode", ["interp", "codegen"])
    def test_transform_matches_cli_run_output(
        self, tmp_path, source_xml, figure, exec_mode
    ):
        mapping = self.FIGURES[figure]()
        expected = cli_run_output(
            tmp_path, mapping, source_xml, "--exec-mode", exec_mode
        )
        service = make_service()
        fp = register(service, mapping, f"?exec_mode={exec_mode}")
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        assert response.status == 200
        assert response.body == expected

    @pytest.mark.parametrize("figure", sorted(FIGURES))
    def test_no_optimize_transform_matches_cli(
        self, tmp_path, source_xml, figure
    ):
        mapping = self.FIGURES[figure]()
        expected = cli_run_output(
            tmp_path, mapping, source_xml, "--no-optimize"
        )
        service = make_service()
        fp = register(service, mapping, "?optimize=0")
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        assert response.status == 200
        assert response.body == expected

    def test_xquery_engine_matches_cli(self, tmp_path, source_xml, mapping):
        expected = cli_run_output(
            tmp_path, mapping, source_xml, "--engine", "xquery"
        )
        service = make_service()
        fp = register(service, mapping, "?engine=xquery")
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        assert response.status == 200
        assert response.body == expected

    def test_json_envelope_equals_raw_body(self, service, mapping, source_xml):
        fp = register(service, mapping)
        raw = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        envelope = service.dispatch(
            "POST", "/transform",
            {"Content-Type": "application/json"},
            json.dumps({"mapping": fp, "document": source_xml}).encode(),
        )
        assert envelope.status == 200
        assert envelope.body == raw.body

    def test_response_names_the_request_and_mapping(
        self, service, mapping, source_xml
    ):
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        headers = dict(response.headers)
        assert headers["X-Clip-Request"] == "req-000001"
        assert headers["X-Clip-Mapping"] == fp


class TestTransformBatch:
    def test_batch_xml_matches_cli_batch_files(
        self, tmp_path, mapping, source_xml
    ):
        mapping_path = tmp_path / "mapping.json"
        mapping_path.write_text(dumps(mapping), encoding="utf-8")
        sources = []
        for index in range(3):
            path = tmp_path / f"source-{index}.xml"
            path.write_text(source_xml, encoding="utf-8")
            sources.append(str(path))
        out_dir = tmp_path / "out"
        assert cli.main(
            ["batch", str(mapping_path)] + sources
            + ["--output-dir", str(out_dir)]
        ) == 0
        expected = [
            (out_dir / f"source-{index}.out.xml").read_text(encoding="utf-8")
            for index in range(3)
        ]
        service = make_service()
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", "/transform/batch", {},
            json.dumps({"mapping": fp, "documents": [source_xml] * 3}).encode(),
        )
        assert response.status == 200
        doc = json.loads(response.body)
        assert doc["format"] == "clip-service-batch"
        assert doc["succeeded"] == 3
        assert [entry["xml"] for entry in doc["results"]] == expected
        assert [entry["index"] for entry in doc["results"]] == [0, 1, 2]

    def test_collect_isolates_a_malformed_document(
        self, mapping, source_xml, dead_letter_dir
    ):
        service = make_service(dead_letter_dir=str(dead_letter_dir))
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", "/transform/batch", {},
            json.dumps({
                "mapping": fp,
                "documents": [source_xml, "<broken", source_xml],
            }).encode(),
        )
        assert response.status == 200
        doc = json.loads(response.body)
        assert doc["succeeded"] == 2
        assert [entry["index"] for entry in doc["results"]] == [0, 2]
        [failure] = doc["failures"]
        assert failure["index"] == 1
        assert failure["error"] == "XmlParseError"
        # The raw text — not a parsed instance — is what got persisted.
        [letter_path] = [
            path for path in doc["dead_letters"]
            if path.endswith(".xml")
        ]
        assert open(letter_path, encoding="utf-8").read() == "<broken"

    def test_fail_fast_parse_error_aborts_the_request(
        self, service, mapping, source_xml
    ):
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", "/transform/batch", {},
            json.dumps({
                "mapping": fp,
                "documents": [source_xml, "<broken"],
                "error_policy": "fail_fast",
            }).encode(),
        )
        assert response.status == 400
        assert json.loads(response.body)["error"] == "XmlParseError"

    def test_fail_fast_evaluation_failure_reports_source_index(
        self, mapping, source_xml
    ):
        service = make_service(
            injector=FaultInjector({1: Fault(kind="raise")})
        )
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", "/transform/batch", {},
            json.dumps({
                "mapping": fp,
                "documents": [source_xml] * 3,
                "error_policy": "fail_fast",
            }).encode(),
        )
        assert response.status == 500
        doc = json.loads(response.body)
        assert doc["error"] == "ExecutionError"
        assert doc["attempts"] == 1

    def test_requested_workers_are_clamped_to_the_config_ceiling(
        self, service, mapping, source_xml
    ):
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", "/transform/batch", {},
            json.dumps({
                "mapping": fp,
                "documents": [source_xml],
                "workers": 64,
            }).encode(),
        )
        assert response.status == 200
        assert json.loads(response.body)["metrics"]["workers"] == 1

    def test_empty_document_list_is_400(self, service, mapping):
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", "/transform/batch", {},
            json.dumps({"mapping": fp, "documents": []}).encode(),
        )
        assert response.status == 400


class TestDeadlines:
    def test_deadline_overrun_is_a_structured_504_and_dead_letters(
        self, mapping, source_xml, dead_letter_dir
    ):
        service = make_service(
            deadline=0.2,
            dead_letter_dir=str(dead_letter_dir),
            injector=FaultInjector({0: Fault(kind="delay", seconds=5.0)}),
        )
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        assert response.status == 504
        doc = json.loads(response.body)
        assert doc["error"] == "DocumentTimeout"
        assert doc["timed_out"] is True
        assert doc["transient"] is True
        letters = [p for p in doc["dead_letters"] if p.endswith(".xml")]
        assert letters and all(os.path.exists(path) for path in letters)
        text = service.dispatch("GET", "/metrics").body.decode()
        assert "clip_service_dead_letters_total 1" in text
        assert "clip_service_document_failures_total 1" in text

    def test_request_deadline_can_shorten_but_not_extend(self, mapping):
        service = make_service(deadline=0.1)
        fp = register(service, mapping)
        # ?deadline=60 must not extend the configured 0.1 s budget.
        service.injector = FaultInjector(
            {0: Fault(kind="delay", seconds=5.0)}
        )
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}&deadline=60", {},
            to_xml(deptstore.source_instance()).encode(),
        )
        assert response.status == 504

    def test_nonpositive_request_deadline_is_400(
        self, service, mapping, source_xml
    ):
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}&deadline=0", {},
            source_xml.encode(),
        )
        assert response.status == 400


class TestErrorEnvelopes:
    def test_malformed_document_is_400_and_dead_letters_the_raw_text(
        self, mapping, dead_letter_dir
    ):
        service = make_service(dead_letter_dir=str(dead_letter_dir))
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, b"<not xml"
        )
        assert response.status == 400
        doc = json.loads(response.body)
        assert doc["error"] == "XmlParseError"
        assert doc["format"] == "clip-service-error"
        [letter] = [p for p in doc["dead_letters"] if p.endswith(".xml")]
        assert open(letter, encoding="utf-8").read() == "<not xml"

    def test_unknown_mapping_is_404(self, service, source_xml):
        response = service.dispatch(
            "POST", "/transform?mapping=deadbeef", {}, source_xml.encode()
        )
        assert response.status == 404
        assert json.loads(response.body)["error"] == "UnknownMappingError"

    def test_missing_mapping_parameter_is_400(self, service, source_xml):
        assert service.dispatch(
            "POST", "/transform", {}, source_xml.encode()
        ).status == 400

    def test_unknown_route_is_404(self, service):
        response = service.dispatch("GET", "/nope")
        assert response.status == 404
        assert json.loads(response.body)["format"] == "clip-service-error"

    def test_status_mapping_covers_the_hierarchy(self):
        from repro import errors

        assert error_status(errors.AuthError("x")) == 401
        assert error_status(errors.UnknownMappingError("x")) == 404
        assert error_status(errors.PayloadTooLargeError("x")) == 413
        assert error_status(errors.InvalidMappingError("x")) == 422
        assert error_status(errors.OverloadError("x")) == 503
        assert error_status(errors.DocumentTimeout("x")) == 504
        assert error_status(errors.TransientError("x")) == 503
        assert error_status(errors.XmlParseError("x")) == 400
        assert error_status(errors.ExecutionError("x")) == 500
        assert error_status(ValueError("x")) == 400
        assert error_status(RuntimeError("x")) == 500

    def test_status_for_failure_resolves_class_names(self):
        from repro.runtime import DocumentFailure

        timed_out = DocumentFailure(
            index=0, error="DocumentTimeout", message="m",
            transient=True, timed_out=True,
        )
        assert status_for_failure(timed_out) == 504
        execution = DocumentFailure(index=0, error="ExecutionError", message="m")
        assert status_for_failure(execution) == 500
        unknown_transient = DocumentFailure(
            index=0, error="SomethingElse", message="m", transient=True
        )
        assert status_for_failure(unknown_transient) == 503

    def test_overload_sheds_with_503_but_not_observability(self, mapping):
        service = make_service(max_inflight=0)
        response = service.dispatch(
            "POST", "/mappings", {}, dumps(mapping).encode()
        )
        assert response.status == 503
        assert json.loads(response.body)["transient"] is True
        assert service.dispatch("GET", "/health").status == 200
        text = service.dispatch("GET", "/metrics").body.decode()
        assert "clip_service_requests_shed_total 1" in text

    def test_oversized_body_is_413(self, service, mapping):
        small = make_service(max_body=16)
        response = small.dispatch(
            "POST", "/mappings", {}, dumps(mapping).encode()
        )
        assert response.status == 413


class TestAuth:
    def test_unsigned_request_is_401_when_secret_is_set(self, mapping):
        service = make_service(secret="hunter2")
        response = service.dispatch(
            "POST", "/mappings", {}, dumps(mapping).encode()
        )
        assert response.status == 401
        assert json.loads(response.body)["error"] == "AuthError"

    def test_signed_request_is_accepted(self, mapping, source_xml):
        service = make_service(secret="hunter2")
        body = dumps(mapping).encode()
        response = service.dispatch(
            "POST", "/mappings",
            {SIGNATURE_HEADER: sign_body("hunter2", body)}, body,
        )
        assert response.status == 201
        fp = json.loads(response.body)["fingerprint"]
        doc = source_xml.encode()
        transformed = service.dispatch(
            "POST", f"/transform?mapping={fp}",
            {SIGNATURE_HEADER: "sha256=" + sign_body("hunter2", doc)}, doc,
        )
        assert transformed.status == 200

    def test_wrong_signature_is_401_and_counted(self, mapping):
        service = make_service(secret="hunter2")
        body = dumps(mapping).encode()
        response = service.dispatch(
            "POST", "/mappings", {SIGNATURE_HEADER: "00" * 32}, body
        )
        assert response.status == 401
        text = service.dispatch(
            "GET", "/metrics", {SIGNATURE_HEADER: sign_body("hunter2", b"")}
        ).body.decode()
        assert "clip_service_auth_failures_total 1" in text

    def test_health_is_exempt(self):
        service = make_service(secret="hunter2")
        assert service.dispatch("GET", "/health").status == 200

    def test_verify_signature_is_a_noop_without_a_secret(self):
        verify_signature(None, b"anything", None)


class TestRequestArtifacts:
    def test_metrics_artifact_parses_as_batch_metrics(
        self, service, mapping, source_xml
    ):
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        request_id = dict(response.headers)["X-Clip-Request"]
        payload = json.loads(service.dispatch(
            "GET", f"/requests/{request_id}/metrics"
        ).body)
        metrics = BatchMetrics.from_dict(payload)
        assert metrics.documents == 1
        assert metrics.cache_hits == 1
        assert metrics.failures == 0

    def test_trace_artifact_parses_as_clip_trace(
        self, service, mapping, source_xml
    ):
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}&trace=1", {},
            source_xml.encode(),
        )
        request_id = dict(response.headers)["X-Clip-Request"]
        payload = json.loads(service.dispatch(
            "GET", f"/requests/{request_id}/trace"
        ).body)
        trace = Trace.from_dict(payload)
        assert any(span["name"] == "batch" for span in trace.spans)

    def test_untraced_request_has_no_trace_artifact(
        self, service, mapping, source_xml
    ):
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        request_id = dict(response.headers)["X-Clip-Request"]
        missing = service.dispatch("GET", f"/requests/{request_id}/trace")
        assert missing.status == 404
        assert "trace=1" in json.loads(missing.body)["message"]

    def test_explain_artifact_is_a_plan_explain_document(
        self, service, mapping, source_xml
    ):
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        request_id = dict(response.headers)["X-Clip-Request"]
        payload = json.loads(service.dispatch(
            "GET", f"/requests/{request_id}/explain"
        ).body)
        assert payload["format"] == "clip-plan-explain"
        assert payload["optimize"] is True
        assert payload["result_elements"] > 0

    def test_history_is_bounded(self, mapping, source_xml):
        service = make_service(history=1)
        fp = register(service, mapping)
        first = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        second = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        first_id = dict(first.headers)["X-Clip-Request"]
        second_id = dict(second.headers)["X-Clip-Request"]
        assert service.dispatch("GET", f"/requests/{first_id}").status == 404
        assert service.dispatch("GET", f"/requests/{second_id}").status == 200

    def test_unknown_artifact_kind_is_404(self, service, mapping, source_xml):
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        request_id = dict(response.headers)["X-Clip-Request"]
        assert service.dispatch(
            "GET", f"/requests/{request_id}/lineage"
        ).status == 404


class TestConfigResolution:
    def test_flag_beats_environment_beats_default(self):
        environ = {"CLIP_SERVICE_PORT": "9000"}
        assert resolve_setting(7000, "CLIP_SERVICE_PORT", 8317,
                               parse=int, environ=environ) == 7000
        assert resolve_setting(None, "CLIP_SERVICE_PORT", 8317,
                               parse=int, environ=environ) == 9000
        assert resolve_setting(None, "CLIP_SERVICE_PORT", 8317,
                               parse=int, environ={}) == 8317

    def test_blank_environment_value_falls_through(self):
        assert resolve_setting(None, "CLIP_SERVICE_HOST", "127.0.0.1",
                               environ={"CLIP_SERVICE_HOST": "  "}) == "127.0.0.1"

    def test_unparseable_environment_names_the_variable(self):
        with pytest.raises(ValueError, match="CLIP_SERVICE_PORT"):
            resolve_setting(None, "CLIP_SERVICE_PORT", 8317, parse=int,
                            environ={"CLIP_SERVICE_PORT": "banana"})

    def test_service_config_resolves_every_knob_from_environment(self):
        config = ServiceConfig.resolve(environ={
            "CLIP_SERVICE_HOST": "0.0.0.0",
            "CLIP_SERVICE_PORT": "9001",
            "CLIP_SERVICE_WORKERS": "4",
            "CLIP_SERVICE_DEADLINE": "2.5",
            "CLIP_SERVICE_SECRET": "sssh",
            "CLIP_SERVICE_DEAD_LETTER_DIR": "/tmp/dl",
            "CLIP_SERVICE_MAX_INFLIGHT": "8",
            "CLIP_SERVICE_MAX_BODY": "1024",
            "CLIP_SERVICE_HISTORY": "2",
        })
        assert config.host == "0.0.0.0"
        assert config.port == 9001
        assert config.workers == 4
        assert config.deadline == 2.5
        assert config.secret == "sssh"
        assert config.dead_letter_dir == "/tmp/dl"
        assert config.max_inflight == 8
        assert config.max_body == 1024
        assert config.history == 2

    def test_zero_deadline_means_unbounded(self):
        assert ServiceConfig.resolve(
            environ={"CLIP_SERVICE_DEADLINE": "0"}
        ).deadline is None
        assert ServiceConfig.resolve(deadline=-1.0, environ={}).deadline is None

    def test_flags_override_environment(self):
        config = ServiceConfig.resolve(
            port=7000, workers=2,
            environ={"CLIP_SERVICE_PORT": "9001", "CLIP_SERVICE_WORKERS": "8"},
        )
        assert config.port == 7000
        assert config.workers == 2

    def test_invalid_values_are_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig.resolve(port=70000, environ={})
        with pytest.raises(ValueError):
            ServiceConfig.resolve(workers=0, environ={})
        with pytest.raises(ValueError):
            ServiceConfig.resolve(history=0, environ={})


class TestServeCLI:
    def test_parser_accepts_serve(self):
        args = cli.build_parser().parse_args(["serve", "--port", "0"])
        assert args.port == 0
        assert args.handler is cli._cmd_serve

    def test_bad_environment_is_a_clean_exit(self, capsys, monkeypatch):
        monkeypatch.setenv("CLIP_SERVICE_PORT", "banana")
        assert cli.main(["serve"]) == 2
        assert "CLIP_SERVICE_PORT" in capsys.readouterr().err


class TestTransformDelta:
    """``POST /transform/delta``: incremental re-transforms chained off
    a stored request's source/target pair."""

    def _transform(self, service, mapping, source_xml):
        fp = register(service, mapping)
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        assert response.status == 200
        return dict(response.headers)["X-Clip-Request"], response.body

    def _edited(self, source_xml: str) -> str:
        from repro.xml.parser import parse_xml

        doc = parse_xml(source_xml)
        field = doc.findall("dept")[0].findall("Proj")[0].find("pname")
        field.clear_text()
        field.set_text("Delta-Edited Project")
        return to_xml(doc)

    def test_delta_matches_a_fresh_full_transform(
        self, service, mapping, source_xml
    ):
        request_id, _body = self._transform(service, mapping, source_xml)
        edited = self._edited(source_xml)
        response = service.dispatch(
            "POST", "/transform/delta", {},
            json.dumps({"request": request_id, "document": edited}).encode(),
        )
        assert response.status == 200
        headers = dict(response.headers)
        assert headers["X-Clip-Incremental"] in (
            "unchanged", "scoped", "fallback"
        )
        fresh = make_service()
        fp = register(fresh, mapping)
        full = fresh.dispatch(
            "POST", f"/transform?mapping={fp}", {}, edited.encode()
        )
        assert response.body == full.body

    def test_unchanged_document_reports_unchanged_mode(
        self, service, mapping, source_xml
    ):
        request_id, body = self._transform(service, mapping, source_xml)
        response = service.dispatch(
            "POST", "/transform/delta", {},
            json.dumps(
                {"request": request_id, "document": source_xml}
            ).encode(),
        )
        assert response.status == 200
        assert dict(response.headers)["X-Clip-Incremental"] == "unchanged"
        assert response.body == body

    def test_incremental_counters_appear_in_metrics(
        self, service, mapping, source_xml
    ):
        request_id, _body = self._transform(service, mapping, source_xml)
        service.dispatch(
            "POST", "/transform/delta", {},
            json.dumps(
                {"request": request_id, "document": self._edited(source_xml)}
            ).encode(),
        )
        text = service.dispatch("GET", "/metrics").body.decode()
        assert "clip_service_incremental_hits_total" in text
        assert "clip_service_incremental_fallbacks_total" in text
        hits = [
            line
            for line in text.splitlines()
            if line.startswith("clip_service_incremental_")
            and not line.startswith("#")
        ]
        assert sum(int(line.split()[-1]) for line in hits) >= 1

    def test_unknown_base_request_is_404(self, service, mapping, source_xml):
        register(service, mapping)
        response = service.dispatch(
            "POST", "/transform/delta", {},
            json.dumps(
                {"request": "req-999999", "document": source_xml}
            ).encode(),
        )
        assert response.status == 404

    def test_malformed_envelope_is_a_clean_400(self, service):
        response = service.dispatch(
            "POST", "/transform/delta", {}, b"[1, 2, 3]"
        )
        assert response.status == 400
        assert b"envelope" in response.body

    def test_out_of_range_threshold_is_rejected(
        self, service, mapping, source_xml
    ):
        request_id, _body = self._transform(service, mapping, source_xml)
        response = service.dispatch(
            "POST", "/transform/delta", {},
            json.dumps({
                "request": request_id,
                "document": self._edited(source_xml),
                "threshold": 3.5,
            }).encode(),
        )
        assert response.status == 400


# -- the mapping algebra at the service surface ------------------------------


def _alpha_renamed_fig3() -> ClipMapping:
    """Figure 3 with its binder renamed: same canonical normal form,
    different structural fingerprint."""
    clip = ClipMapping(
        deptstore.source_schema(), deptstore.target_schema_fig3()
    )
    clip.build("dept/regEmp", "department/employee", var="z",
               condition="$z.sal.value > 11000")
    clip.value("dept/regEmp/ename/value", "department/employee/@name")
    return clip


def make_canonicalizing_service() -> ClipService:
    from repro.runtime import PlanCache

    return ClipService(
        ServiceConfig.resolve(environ={}),
        cache=PlanCache(canonicalize=True),
    )


class TestCanonicalizedCache:
    def test_alpha_renamed_registration_is_one_compile_and_a_hit(self):
        """The satellite contract: behind a canonicalizing cache, two
        alpha-renamed mappings register under ONE fingerprint, compile
        once, and the second registration is a cache hit — visible as a
        canonical-hit delta in ``GET /metrics``."""
        service = make_canonicalizing_service()
        first = service.dispatch(
            "POST", "/mappings", {}, dumps(deptstore.mapping_fig3()).encode()
        )
        second = service.dispatch(
            "POST", "/mappings", {}, dumps(_alpha_renamed_fig3()).encode()
        )
        assert first.status == 201
        assert second.status == 200, second.body
        first_doc = json.loads(first.body)
        second_doc = json.loads(second.body)
        assert first_doc["fingerprint"] == second_doc["fingerprint"]
        assert first_doc["cache"] == "miss"
        assert second_doc["cache"] == "hit"
        stats = service.cache.stats
        assert stats.misses == 1, "the variant must not recompile"
        assert stats.canonical_misses == 1
        assert stats.canonical_hits == 1
        text = service.dispatch("GET", "/metrics").body.decode()
        assert "clip_service_plan_cache_canonical_hits_total 1" in text
        assert "clip_service_plan_cache_canonical_misses_total 1" in text
        assert "clip_service_plan_cache_misses_total 1" in text

    def test_default_cache_keeps_variants_apart(self, service):
        first = service.dispatch(
            "POST", "/mappings", {}, dumps(deptstore.mapping_fig3()).encode()
        )
        second = service.dispatch(
            "POST", "/mappings", {}, dumps(_alpha_renamed_fig3()).encode()
        )
        assert first.status == 201
        assert second.status == 201
        assert (
            json.loads(first.body)["fingerprint"]
            != json.loads(second.body)["fingerprint"]
        )
        assert service.cache.stats.misses == 2
        text = service.dispatch("GET", "/metrics").body.decode()
        assert "clip_service_plan_cache_canonical_hits_total 0" in text
        assert "clip_service_plan_cache_canonical_misses_total 0" in text

    def test_transform_through_either_variant_is_byte_identical(
        self, source_xml
    ):
        """Alpha-renamed registrations share one plan; transforms keyed
        by the shared fingerprint serve both callers identically."""
        service = make_canonicalizing_service()
        fp = register(service, deptstore.mapping_fig3())
        fp2 = register(service, _alpha_renamed_fig3())
        assert fp == fp2
        response = service.dispatch(
            "POST", f"/transform?mapping={fp}", {}, source_xml.encode()
        )
        assert response.status == 200
        plain = make_service()
        plain_fp = register(plain, deptstore.mapping_fig3())
        reference = plain.dispatch(
            "POST", f"/transform?mapping={plain_fp}", {}, source_xml.encode()
        )
        assert response.body == reference.body


class TestCompose:
    """``POST /mappings/compose``: the algebra's composition as a
    service surface."""

    @staticmethod
    def _chain():
        from repro.xsd.dsl import attr, elem, schema
        from repro.xsd.types import INT, STRING

        src_a = schema(elem(
            "S",
            elem("dept", "[0..*]", attr("dname", STRING),
                 elem("emp", "[0..*]", attr("name", STRING),
                      elem("sal", text=INT))),
        ))
        src_b = schema(elem(
            "B",
            elem("department", "[0..*]", attr("dn", STRING),
                 elem("employee", "[0..*]", attr("ename", STRING),
                      elem("pay", text=INT))),
        ))
        src_c = schema(elem(
            "C",
            elem("rich", "[0..*]", attr("who", STRING), attr("unit", STRING)),
        ))
        m_ab = ClipMapping(src_a, src_b)
        d = m_ab.build("dept", "department", var="d")
        m_ab.build("dept/emp", "department/employee", var="e", parent=d)
        m_ab.value("dept/@dname", "department/@dn")
        m_ab.value("dept/emp/@name", "department/employee/@ename")
        m_ab.value("dept/emp/sal/value", "department/employee/pay/value")
        m_bc = ClipMapping(src_b, src_c)
        ctx = m_bc.context("department", var="x")
        m_bc.build("department/employee", "rich", var="y", parent=ctx,
                   condition="$y.pay.value > 1000")
        m_bc.value("department/employee/@ename", "rich/@who")
        m_bc.value("department/@dn", "rich/@unit")
        grouped = ClipMapping(src_b, src_c)
        grouped.group("department/employee", "rich", var="w",
                      by=["$w.@ename"])
        grouped.value("department/employee/@ename", "rich/@who")
        return m_ab, m_bc, grouped

    @staticmethod
    def _source_xml() -> str:
        from repro.xml.model import element

        return to_xml(element(
            "S",
            element("dept",
                    element("emp", element("sal", text=1500), name="Ann"),
                    element("emp", element("sal", text=900), name="Bob"),
                    dname="ICT"),
            element("dept",
                    element("emp", element("sal", text=2000), name="Cid"),
                    dname="Sales"),
        ))

    def _compose(self, service, first_fp, second_fp, query=""):
        return service.dispatch(
            "POST", f"/mappings/compose{query}", {},
            json.dumps({"first": first_fp, "second": second_fp}).encode(),
        )

    def test_compose_registers_under_the_compose_fingerprint(self, service):
        from repro.algebra import compose_fingerprint

        m_ab, m_bc, _ = self._chain()
        fp_ab = register(service, m_ab)
        fp_bc = register(service, m_bc)
        response = self._compose(service, fp_ab, fp_bc)
        assert response.status == 201, response.body
        doc = json.loads(response.body)
        assert doc["fingerprint"] == compose_fingerprint(fp_ab, fp_bc)
        assert doc["composed"] == [fp_ab, fp_bc]
        assert doc["cache"] == "miss"
        again = self._compose(service, fp_ab, fp_bc)
        assert again.status == 200
        assert json.loads(again.body)["cache"] == "hit"

    def test_transform_through_composition_matches_sequential(self, service):
        from repro import Transformer
        from repro.xml.parser import parse_xml

        m_ab, m_bc, _ = self._chain()
        fp_ab = register(service, m_ab)
        fp_bc = register(service, m_bc)
        composed_fp = json.loads(
            self._compose(service, fp_ab, fp_bc).body
        )["fingerprint"]
        source_xml = self._source_xml()
        response = service.dispatch(
            "POST", f"/transform?mapping={composed_fp}", {},
            source_xml.encode(),
        )
        assert response.status == 200, response.body
        instance = parse_xml(source_xml, m_ab.source)
        sequential = Transformer(m_bc)(Transformer(m_ab)(instance))
        assert response.body.decode() == to_xml(sequential), (
            "composed transform diverges from sequential execution"
        )

    def test_compose_outside_fragment_is_422_with_reason(self, service):
        m_ab, _, grouped = self._chain()
        fp_ab = register(service, m_ab)
        fp_grouped = register(service, grouped)
        response = self._compose(service, fp_ab, fp_grouped)
        assert response.status == 422
        doc = json.loads(response.body)
        assert doc["error"] == "ComposeError"

    def test_compose_unknown_operand_is_404(self, service):
        m_ab, m_bc, _ = self._chain()
        fp_ab = register(service, m_ab)
        assert self._compose(service, fp_ab, "feedface").status == 404

    def test_compose_envelope_without_operands_is_400(self, service):
        response = service.dispatch(
            "POST", "/mappings/compose", {}, json.dumps({}).encode()
        )
        assert response.status == 400

    def test_composing_a_composition_is_refused(self, service):
        m_ab, m_bc, _ = self._chain()
        fp_ab = register(service, m_ab)
        fp_bc = register(service, m_bc)
        composed_fp = json.loads(
            self._compose(service, fp_ab, fp_bc).body
        )["fingerprint"]
        response = self._compose(service, composed_fp, fp_bc)
        assert response.status == 400
        assert b"compositions" in response.body

    def test_batch_through_composition_is_refused(self, service):
        m_ab, m_bc, _ = self._chain()
        fp_ab = register(service, m_ab)
        fp_bc = register(service, m_bc)
        composed_fp = json.loads(
            self._compose(service, fp_ab, fp_bc).body
        )["fingerprint"]
        response = service.dispatch(
            "POST", "/transform/batch", {},
            json.dumps({
                "mapping": composed_fp,
                "documents": [self._source_xml()],
            }).encode(),
        )
        assert response.status == 400
        assert b"batch" in response.body

    def test_composition_appears_in_listing_and_detail(self, service):
        m_ab, m_bc, _ = self._chain()
        fp_ab = register(service, m_ab)
        fp_bc = register(service, m_bc)
        composed_fp = json.loads(
            self._compose(service, fp_ab, fp_bc).body
        )["fingerprint"]
        listing = json.loads(service.dispatch("GET", "/mappings").body)
        composed_entries = [
            entry for entry in listing["mappings"]
            if entry.get("composed")
        ]
        assert [entry["fingerprint"] for entry in composed_entries] == [
            composed_fp
        ]
        detail = json.loads(
            service.dispatch("GET", f"/mappings/{composed_fp}").body
        )
        assert detail["cached"] is True
        assert detail["composed"] == [fp_ab, fp_bc]
