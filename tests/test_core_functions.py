"""Unit tests for scalar and aggregate functions."""

from __future__ import annotations

import pytest

from repro.core.functions import (
    ADD,
    AVG,
    CONCAT,
    COUNT,
    DIVIDE,
    IDENTITY,
    LOWER,
    MAX,
    MIN,
    MULTIPLY,
    SUBTRACT,
    SUM,
    UPPER,
    aggregate,
    scalar,
)
from repro.errors import MappingError
from repro.xml.model import element


class TestScalars:
    def test_identity(self):
        assert IDENTITY.apply(["x"]) == "x"

    def test_identity_arity_checked(self):
        with pytest.raises(MappingError):
            IDENTITY.apply(["a", "b"])

    def test_concat_stringifies(self):
        assert CONCAT.apply(["a", 1, "b"]) == "a1b"

    def test_arithmetic(self):
        assert ADD.apply([1, 2, 3]) == 6
        assert SUBTRACT.apply([5, 2]) == 3
        assert MULTIPLY.apply([2, 3, 4]) == 24
        assert DIVIDE.apply([7, 2]) == 3.5

    def test_integral_results_stay_int(self):
        assert DIVIDE.apply([6, 2]) == 3
        assert isinstance(DIVIDE.apply([6, 2]), int)

    def test_division_by_zero(self):
        with pytest.raises(MappingError):
            DIVIDE.apply([1, 0])

    def test_arithmetic_rejects_non_numbers(self):
        with pytest.raises(MappingError):
            ADD.apply([1, "x"])
        with pytest.raises(MappingError):
            ADD.apply([1, True])  # bools are not numbers here

    def test_case_functions(self):
        assert UPPER.apply(["ict"]) == "ICT"
        assert LOWER.apply(["ICT"]) == "ict"

    def test_registry_lookup(self):
        assert scalar("concat") is CONCAT
        with pytest.raises(MappingError):
            scalar("reverse")


class TestAggregates:
    def test_count_counts_items_including_elements(self):
        assert COUNT.apply([element("a"), element("b")]) == 2
        assert COUNT.apply([]) == 0

    def test_avg_matches_figure9(self):
        assert AVG.apply([10000, 12000, 10500, 11000]) == 10875
        assert AVG.apply([30000, 10000, 20000]) == 20000

    def test_avg_atomizes_elements(self):
        values = [element("sal", text=10), element("sal", text=20)]
        assert AVG.apply(values) == 15

    def test_avg_empty_raises(self):
        with pytest.raises(MappingError):
            AVG.apply([])

    def test_sum_min_max(self):
        assert SUM.apply([1, 2, 3]) == 6
        assert MIN.apply([3, 1, 2]) == 1
        assert MAX.apply([3, 1, 2]) == 3

    def test_min_max_empty_raise(self):
        with pytest.raises(MappingError):
            MIN.apply([])
        with pytest.raises(MappingError):
            MAX.apply([])

    def test_avg_rejects_non_numeric(self):
        with pytest.raises(MappingError):
            AVG.apply(["a"])

    def test_registry_lookup(self):
        assert aggregate("count") is COUNT
        with pytest.raises(MappingError):
            aggregate("median")
