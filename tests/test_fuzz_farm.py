"""The differential fuzz farm: smoke slice, divergence capture, replay.

Tier-1 keeps a fast fixed-seed slice (~30 triples, in-process engines
only); the ``slow`` marker gates the extended sweep that CI's nightly
fuzz leg runs.  The central negative test deliberately breaks an
optimizer rule in-process — dropping the planner's pushed filters —
and demands the farm catch the divergence, dead-letter it with a
replayable trace, and come back clean once the planner is healed.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.executor import planner
from repro.fuzz import (
    FUZZ_REPORT_FORMAT,
    FUZZ_REPORT_VERSION,
    FuzzError,
    FuzzFarm,
    parse_report,
    run_fuzz,
)
from repro.generation import AXES

SMOKE_SEED = 7
SMOKE_COUNT = 30


class TestSmokeSlice:
    def test_thirty_triples_zero_divergences(self):
        report = run_fuzz(seed=SMOKE_SEED, count=SMOKE_COUNT)
        assert report.status == "ok"
        assert report.divergences == []
        assert report.cases == SMOKE_COUNT
        assert not report.exhausted_budget
        assert report.skipped == 0
        # Every axis was exercised and fully executed.
        assert set(report.axis_coverage) == set(AXES)
        for coverage in report.axis_coverage.values():
            assert coverage.executed == coverage.cases > 0
        # Reference + at least naive and xquery cross-checks per case.
        assert report.comparisons >= 2 * SMOKE_COUNT
        # XSLT eligibility probing found eligible cases somewhere.
        assert any(
            c.xslt_eligible for c in report.axis_coverage.values()
        )

    def test_report_is_byte_deterministic(self):
        first = run_fuzz(seed=SMOKE_SEED, count=SMOKE_COUNT).to_json()
        second = run_fuzz(seed=SMOKE_SEED, count=SMOKE_COUNT).to_json()
        assert first == second

    def test_report_document_round_trips(self):
        report = run_fuzz(seed=SMOKE_SEED, count=12)
        document = parse_report(report.to_json())
        assert document["format"] == FUZZ_REPORT_FORMAT
        assert document["version"] == FUZZ_REPORT_VERSION
        assert document["status"] == "ok"
        assert document["seed"] == SMOKE_SEED
        assert sum(
            c["cases"] for c in document["axis_coverage"].values()
        ) == 12

    def test_parse_report_rejects_foreign_documents(self):
        with pytest.raises(ValueError, match="not a clip-fuzz-report"):
            parse_report(json.dumps({"format": "clip-trace", "version": 1}))
        with pytest.raises(ValueError, match="unsupported"):
            parse_report(
                json.dumps({"format": FUZZ_REPORT_FORMAT, "version": 99})
            )

    def test_axes_restriction(self):
        report = run_fuzz(seed=SMOKE_SEED, count=8, axes=["deep-cpt"])
        assert set(report.axis_coverage) == {"deep-cpt"}
        assert report.axis_coverage["deep-cpt"].cases == 8

    def test_zero_budget_skips_every_case(self):
        report = run_fuzz(seed=SMOKE_SEED, count=10, budget_seconds=0.0)
        assert report.exhausted_budget
        assert report.skipped == 10
        assert report.executions == 0
        assert report.status == "ok"  # no divergences found — none ran

    def test_farm_configuration_validated(self):
        with pytest.raises(FuzzError, match="unknown engines"):
            FuzzFarm(engines=("tgd", "saxon"))
        with pytest.raises(FuzzError, match="reference engine"):
            FuzzFarm(engines=("xquery",))
        with pytest.raises(FuzzError, match="workers"):
            FuzzFarm(workers=(0,))


def _breaking_plan_level(real):
    """A deliberately broken optimizer rule: pushed single-variable
    filters are dropped from every generator slot, so optimized
    evaluation keeps tuples the mapping's conditions exclude."""

    def broken(mapping, depth):
        plan = real(mapping, depth)
        slots = tuple(
            dataclasses.replace(slot, seq_filters=())
            for slot in plan.slots
        )
        return dataclasses.replace(plan, slots=slots)

    return broken


class TestBrokenOptimizerIsCaught:
    def test_divergence_dead_lettered_and_replayable(
        self, dead_letter_dir, monkeypatch
    ):
        real = planner.plan_level
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(
                planner, "plan_level", _breaking_plan_level(real)
            )
            farm = FuzzFarm(dead_letter_dir=dead_letter_dir)
            report = farm.run_corpus(seed=SMOKE_SEED, count=SMOKE_COUNT)
        assert report.status == "divergent"
        assert report.divergences
        # The filter-bearing axes flag the broken rule; the optimized
        # reference disagrees with naive, xquery, and xslt alike.
        diverged_axes = {d.axis for d in report.divergences}
        assert "deep-cpt" in diverged_axes or "fanout-join" in diverged_axes
        engines_seen = {d.engine for d in report.divergences}
        assert {"tgd", "xquery"} <= engines_seen
        for divergence in report.divergences:
            assert divergence.dead_letter is not None
            assert divergence.detail  # rendered diff lines travel along

        # Every dead letter carries the full replay kit.
        case_dir = dead_letter_dir / report.divergences[0].dead_letter
        names = {p.name for p in case_dir.iterdir()}
        assert {
            "case.json", "mapping.json", "source.xml",
            "expected.xml", "actual.xml", "trace.json",
        } <= names
        manifest = json.loads(
            (case_dir / "case.json").read_text(encoding="utf-8")
        )
        assert manifest["format"] == "clip-fuzz-case"
        assert manifest["seed"] == SMOKE_SEED
        trace = json.loads(
            (case_dir / "trace.json").read_text(encoding="utf-8")
        )
        assert trace["format"] == "clip-trace"

        # With the planner healed, the replay comes back clean — and
        # carries a fresh trace of the healthy run.
        healthy = FuzzFarm()
        result = healthy.replay(case_dir)
        assert not result.diverged
        assert result.error is None
        assert result.case_id == manifest["case_id"]
        assert result.trace is not None

    def test_replay_reproduces_while_still_broken(
        self, dead_letter_dir
    ):
        """Replaying under the *still-broken* planner reproduces the
        divergence from the persisted artifacts alone."""
        real = planner.plan_level
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(
                planner, "plan_level", _breaking_plan_level(real)
            )
            farm = FuzzFarm(dead_letter_dir=dead_letter_dir)
            report = farm.run_corpus(seed=SMOKE_SEED, count=SMOKE_COUNT)
            assert report.divergences
            case_dir = dead_letter_dir / report.divergences[0].dead_letter
            result = FuzzFarm().replay(case_dir)
            assert result.diverged
            assert result.differences
        assert not FuzzFarm().replay(case_dir).diverged

    def test_replay_rejects_non_case_directories(self, tmp_path):
        with pytest.raises(FuzzError, match="no case.json"):
            FuzzFarm().replay(tmp_path)
        (tmp_path / "case.json").write_text("{}", encoding="utf-8")
        with pytest.raises(FuzzError, match="not a clip-fuzz-case"):
            FuzzFarm().replay(tmp_path)


class TestCliFuzz:
    def test_fuzz_subcommand_ok_run(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        assert main(
            ["fuzz", "--seed", str(SMOKE_SEED), "--count", "12",
             "--report-json", str(report_path)]
        ) == 0
        captured = capsys.readouterr()
        assert "status: ok" in captured.out
        document = parse_report(report_path.read_text(encoding="utf-8"))
        assert document["status"] == "ok"

    def test_fuzz_subcommand_axes_and_bad_axis(self, capsys):
        from repro.cli import main

        assert main(
            ["fuzz", "--seed", "7", "--count", "4", "--axes", "deep-cpt"]
        ) == 0
        assert "deep-cpt" in capsys.readouterr().out
        assert main(
            ["fuzz", "--seed", "7", "--count", "4", "--axes", "bogus"]
        ) == 2  # ReproError → usage exit

    def test_fuzz_subcommand_bad_workers(self):
        from repro.cli import main

        assert main(["fuzz", "--count", "2", "--workers", "x"]) == 2

    def test_fuzz_subcommand_divergent_exits_one(
        self, dead_letter_dir, capsys
    ):
        from repro.cli import main

        real = planner.plan_level
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(
                planner, "plan_level", _breaking_plan_level(real)
            )
            code = main(
                ["fuzz", "--seed", str(SMOKE_SEED), "--count", "18",
                 "--dead-letter-dir", str(dead_letter_dir)]
            )
        assert code == 1
        captured = capsys.readouterr()
        assert "DIVERGENT" in captured.out
        # The CLI replay path closes the loop on a dead-lettered case.
        letters = sorted(p for p in dead_letter_dir.iterdir())
        assert letters
        assert main(["fuzz", "--replay", str(letters[0])]) == 0
        assert "clean" in capsys.readouterr().out


@pytest.mark.slow
class TestExtendedSweep:
    """The nightly-scale sweep: a larger seed window and the process-
    pool cross-check.  Excluded from tier-1 by the ``slow`` marker."""

    def test_two_hundred_case_sweep_with_pool_cross_check(self):
        report = run_fuzz(
            seed=20260808, count=200, workers=(1, 2),
        )
        assert report.status == "ok", report.to_json()
        assert report.cases == 200
        assert not report.exhausted_budget

    def test_many_seeds_shallow_sweep(self):
        for seed in range(100, 105):
            report = run_fuzz(seed=seed, count=24)
            assert report.status == "ok", report.to_json()


class TestAlgebraLegs:
    """The composition and round-trip differential legs."""

    def test_composition_axis_runs_clean_and_counts(self):
        report = run_fuzz(seed=11, count=18, axes=["composition"])
        assert report.status == "ok"
        assert report.compose_checks == 18
        assert report.compose_inlined + report.compose_fallbacks == 18
        assert report.compose_inlined > 0
        assert report.compose_fallbacks > 0
        assert report.round_trip_checks == 0
        doc = parse_report(report.to_json())
        assert doc["compose_checks"] == 18
        assert doc["compose_inlined"] == report.compose_inlined
        assert doc["compose_fallbacks"] == report.compose_fallbacks

    def test_round_trip_axis_runs_clean_and_counts(self):
        report = run_fuzz(seed=11, count=12, axes=["round-trip"])
        assert report.status == "ok"
        assert report.round_trip_checks == 12
        assert report.compose_checks == 0
        assert parse_report(report.to_json())["round_trip_checks"] == 12

    def test_algebra_legs_are_byte_deterministic(self):
        axes = ["composition", "round-trip"]
        first = run_fuzz(seed=13, count=10, axes=axes).to_json()
        second = run_fuzz(seed=13, count=10, axes=axes).to_json()
        assert first == second

    def test_compose_and_round_trip_kits_replay_clean(self, tmp_path):
        """A dead-lettered algebra-leg kit replays through the same
        oracle: fabricate kits for healthy cases and demand the replay
        come back clean."""
        from repro.fuzz.farm import Combo
        from repro.fuzz.report import FuzzReport
        from repro.generation.corpus import generate_corpus

        farm = FuzzFarm(dead_letter_dir=tmp_path)
        cases = list(
            generate_corpus(11, 24, axes=("composition", "round-trip"))
        )
        comp = next(c for c in cases if c.params.get("expect_inlined"))
        rt = next(c for c in cases if c.params.get("round_trip"))
        report = FuzzReport(
            seed=11, count=2, axes=("composition", "round-trip"),
            engines=("tgd",), optimize_modes=(True,), workers=(1,),
        )
        comp_ref = farm.cache.get_or_compile(comp.mapping, "tgd")
        farm._record(
            comp, Combo("tgd", True, 1, "compose"), report,
            kind="bytes", detail=("fabricated",),
            expected=comp_ref(comp.instance),
        )
        rt_ref = farm.cache.get_or_compile(rt.mapping, "tgd")
        farm._record(
            rt, Combo("tgd", True, 1, "round-trip"), report,
            kind="bytes", detail=("fabricated",),
            expected=rt_ref(rt.instance),
        )
        assert len(report.divergences) == 2
        for divergence in report.divergences:
            result = farm.replay(tmp_path / divergence.dead_letter)
            assert result.diverged is False, divergence.dead_letter
            assert result.error is None

    def test_broken_composer_is_caught(self, monkeypatch):
        """Negative control for the compose leg: a composer that
        mangles the fused tgd's filters must show up as divergences."""
        from repro.algebra import compose_tgds as real_compose
        from repro.fuzz import farm as farm_module

        def broken_compose(tgd_ab, tgd_bc):
            fused = real_compose(tgd_ab, tgd_bc)

            def strip(level):
                return dataclasses.replace(
                    level,
                    where=(),
                    submappings=tuple(
                        strip(sub) for sub in level.submappings
                    ),
                )

            return dataclasses.replace(
                fused, roots=tuple(strip(root) for root in fused.roots)
            )

        monkeypatch.setattr(farm_module, "compose_tgds", broken_compose)
        report = run_fuzz(seed=11, count=18, axes=["composition"])
        assert report.status == "divergent"
        assert any(
            d.exec_mode == "compose" and d.kind == "bytes"
            for d in report.divergences
        )
