"""Property tests for the tracing layer's determinism contract.

Four families of properties, each tied to a claim in
:mod:`repro.runtime.trace`'s module docstring:

* **structure** — recorded spans strictly nest (every child interval
  lies within its parent's), ids are unique, and parent references
  form a tree (each parent precedes its children in document order);
* **repeatability** — the canonical form is byte-identical across
  repeated runs of the same (mapping, document, engine) triple;
* **equivalence modulo strategy** — ``workers=1``, ``2`` and ``4``
  batch runs produce byte-identical canonical traces (worker-span
  merging is order-insensitive), and ``optimize=True`` vs ``False``
  traces agree outside the ``plan`` subtree;
* **fault accounting** — every failed attempt in a fault-injected run
  appears as exactly one ``error``-kind span, terminal failures and
  retries are marked as such, and dead-letters appear as events.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Transformer
from repro.runtime import (
    BatchRunner,
    Fault,
    FaultInjector,
    PlanCache,
    SpanTracer,
)
from repro.scenarios import deptstore
from repro.xml.model import element

_SCENARIOS = {
    "fig3": deptstore.mapping_fig3,
    "fig6": deptstore.mapping_fig6,
    "fig7": deptstore.mapping_fig7,
}

_DEPT_NAMES = st.sampled_from(["ICT", "Marketing", "Sales"])
_EMP_NAMES = st.sampled_from(["John Smith", "Mark Tane", "Rita Moss"])
_PROJECT_NAMES = st.sampled_from(["Appliances", "Robotics"])
_SALARIES = st.integers(min_value=8000, max_value=15000)
_PIDS = st.integers(min_value=1, max_value=3)


@st.composite
def _dept(draw):
    children = [element("dname", text=draw(_DEPT_NAMES))]
    for _ in range(draw(st.integers(0, 2))):
        children.append(
            element(
                "Proj",
                element("pname", text=draw(_PROJECT_NAMES)),
                pid=draw(_PIDS),
            )
        )
    for _ in range(draw(st.integers(0, 3))):
        children.append(
            element(
                "regEmp",
                element("ename", text=draw(_EMP_NAMES)),
                element("sal", text=draw(_SALARIES)),
                pid=draw(_PIDS),
            )
        )
    return element("dept", *children)


_SOURCE_INSTANCES = st.lists(_dept(), min_size=1, max_size=2).map(
    lambda depts: element("source", *depts)
)


def _traced_run(figure: str, engine: str, instance) -> SpanTracer:
    tracer = SpanTracer()
    Transformer(
        _SCENARIOS[figure](), engine=engine, optimize=True, trace=tracer
    ).apply(instance)
    return tracer


def _check_structure(trace) -> None:
    """Ids unique, parents precede children, child intervals nested."""
    seen: dict[str, dict] = {}
    for span in trace.iter_spans():
        assert span["id"] not in seen, f"duplicate id at {span['path']}"
        seen[span["id"]] = span
        assert span["t1"] >= span["t0"], span["path"]
        if span["parent"] is None:
            continue
        assert span["parent"] in seen, f"dangling parent at {span['path']}"
        parent = seen[span["parent"]]
        assert parent["t0"] <= span["t0"] <= span["t1"] <= parent["t1"], (
            f"child {span['path']} escapes parent {parent['path']} interval"
        )
        assert span["path"].rsplit("/", 1)[0] == parent["path"], (
            f"path of {span['path']} does not extend its parent's"
        )


class TestStructure:
    @pytest.mark.parametrize("engine", ("tgd", "xquery"))
    @pytest.mark.parametrize("figure", sorted(_SCENARIOS))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instance=_SOURCE_INSTANCES)
    def test_spans_strictly_nest(self, figure, engine, instance):
        trace = _traced_run(figure, engine, instance).to_trace()
        _check_structure(trace)

    @settings(max_examples=10, deadline=None)
    @given(instance=_SOURCE_INSTANCES)
    def test_batch_spans_strictly_nest(self, instance):
        tracer = SpanTracer()
        BatchRunner(
            deptstore.mapping_fig6(), cache=PlanCache(), trace=tracer
        ).run([instance, instance])
        _check_structure(tracer.to_trace())


class TestRepeatability:
    @pytest.mark.parametrize("engine", ("tgd", "xquery", "xslt"))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instance=_SOURCE_INSTANCES)
    def test_canonical_trace_is_byte_identical_across_runs(
        self, engine, instance
    ):
        first = _traced_run("fig6", engine, instance).to_trace()
        second = _traced_run("fig6", engine, instance).to_trace()
        assert first.canonical_json() == second.canonical_json()


def _batch_canonical(workers: int, docs) -> str:
    tracer = SpanTracer()
    batch = BatchRunner(
        deptstore.mapping_fig6(),
        workers=workers,
        cache=PlanCache(),
        trace=tracer,
    ).run(docs)
    assert batch.metrics.failures == 0
    trace = tracer.to_trace()
    assert trace.to_dict() == batch.metrics.trace
    return trace.canonical_json()


class TestEquivalence:
    @pytest.mark.parametrize("workers", (2, 4))
    def test_worker_count_does_not_change_canonical_trace(self, workers):
        """Pool execution merges worker-built span payloads back into
        the parent's tree; document order, attempt order and id
        assignment make the merge order-insensitive, so the canonical
        trace matches the deterministic in-process run byte for byte."""
        docs = [deptstore.source_instance() for _ in range(6)]
        assert _batch_canonical(workers, docs) == _batch_canonical(1, docs)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instance=_SOURCE_INSTANCES)
    def test_optimize_changes_only_the_plan_subtree(self, instance):
        """The join-aware planner is an execution strategy, not a
        semantics change: outside the ``plan`` span (whose levels and
        counters legitimately differ), optimized and naive traces are
        identical — same ids, since the trace seed is the
        optimize-independent base fingerprint."""

        def canonical_without_plan(optimize: bool) -> str:
            tracer = SpanTracer()
            Transformer(
                deptstore.mapping_fig6(), optimize=optimize, trace=tracer
            ).apply(instance)
            trace = tracer.to_trace()

            def strip(spans):
                return [
                    dict(span, children=strip(span["children"]))
                    for span in spans
                    if span["name"] != "plan"
                ]

            doc = trace.canonical_dict()
            doc["spans"] = strip(doc["spans"])
            import json

            return json.dumps(doc, sort_keys=True)

        assert canonical_without_plan(True) == canonical_without_plan(False)


class TestFaultAccounting:
    def _run(self, **kwargs):
        docs = [deptstore.source_instance() for _ in range(4)]
        injector = FaultInjector({
            1: Fault(error="TransientError", attempts=2),
            2: Fault(error="ExecutionError"),
        })
        tracer = SpanTracer()
        batch = BatchRunner(
            deptstore.mapping_fig4(),
            cache=PlanCache(),
            trace=tracer,
            error_policy="collect",
            max_retries=2,
            backoff=0.0,
            injector=injector,
            **kwargs,
        ).run(docs)
        return batch, tracer.to_trace()

    @pytest.mark.parametrize("workers", (1, 2))
    def test_every_failure_and_retry_is_one_error_span(self, workers):
        batch, trace = self._run(workers=workers)
        error_spans = [s for s in trace.iter_spans() if s["kind"] == "error"]
        terminal = [s for s in error_spans if s["attrs"].get("terminal")]
        retried = [s for s in error_spans if s["attrs"].get("retried")]
        dead_letters = [
            s for s in trace.iter_spans() if s["name"] == "dead-letter"
        ]
        # doc 1: two transient failures, retried, third attempt clean.
        # doc 2: one permanent failure, terminal, dead-lettered.
        assert len(batch.failures) == 1
        assert batch.metrics.retries == 2
        assert len(terminal) == len(batch.failures)
        assert len(retried) == batch.metrics.retries
        assert len(dead_letters) == len(batch.dead_letters) == 1
        assert len(error_spans) == len(terminal) + len(retried)
        for span in error_spans:
            assert span["attrs"]["error"] in (
                "TransientError", "ExecutionError",
            )
            assert span["name"].startswith("attempt[")
        _check_structure(trace)

    def test_fault_trace_is_deterministic(self):
        first = self._run(workers=1)[1].canonical_json()
        second = self._run(workers=1)[1].canonical_json()
        assert first == second

    def test_attempt_ordinals_follow_retry_order(self):
        _, trace = self._run(workers=1)
        doc1 = trace.find("doc[1]")
        names = [child["name"] for child in doc1["children"]]
        assert names == ["attempt[0]", "attempt[1]", "attempt[2]"]
        kinds = [child["kind"] for child in doc1["children"]]
        assert kinds == ["error", "error", "span"]
