"""Unit tests for the tgd → XQuery emitter (Section VI)."""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.core.mapping import ClipMapping
from repro.executor import execute
from repro.scenarios import deptstore, generic
from repro.xquery import emit_xquery, run_query, serialize
from repro.xquery.serialize import serialize as serialize_query
from repro.xsd.dsl import attr, elem, schema
from repro.xsd.types import STRING


@pytest.fixture
def instance():
    return deptstore.source_instance()


class TestEmittedShape:
    def test_constant_tags_wrap_the_flwor(self):
        """Figure 3: the department tag is outside the for clause."""
        text = serialize(emit_xquery(compile_clip(deptstore.mapping_fig3())))
        dept_pos = text.index("<department>")
        for_pos = text.index("for $d in source/dept")
        assert dept_pos < for_pos

    def test_builder_constructor_inside_return(self):
        text = serialize(emit_xquery(compile_clip(deptstore.mapping_fig4())))
        assert "return" in text
        assert '<department> {' in text
        assert '<employee name="{$r/ename/text()}"/>' in text

    def test_where_clause_renders_condition(self):
        text = serialize(emit_xquery(compile_clip(deptstore.mapping_fig3())))
        assert "where $r/sal/text() > 11000" in text

    def test_join_emits_two_fors_and_where(self):
        text = serialize(emit_xquery(compile_clip(deptstore.mapping_fig6())))
        assert "for $p in $d/Proj" in text
        assert "for $r in $d/regEmp" in text
        assert "where $p/@pid = $r/@pid" in text

    def test_grouping_template_structure(self):
        """The Section VI template: let $context, distinct-values, for
        over the dimension, let $group refilter."""
        text = serialize(emit_xquery(compile_clip(deptstore.mapping_fig7())))
        assert "let $context" in text
        assert "distinct-values(" in text
        assert "let $group" in text
        assert text.index("let $context") < text.index("distinct-values(")
        assert text.index("distinct-values(") < text.index("let $group")

    def test_group_members_feed_submappings(self):
        text = serialize(emit_xquery(compile_clip(deptstore.mapping_fig7())))
        assert "for $p2 in $group" in text

    def test_membership_emits_some_satisfies_is(self):
        text = serialize(emit_xquery(compile_clip(deptstore.mapping_fig8())))
        assert "some $" in text
        assert " is $" in text

    def test_aggregates_use_native_functions(self):
        """Figure 9's listing: count($d/Proj) with the context variable
        as the path's starting point."""
        text = serialize(emit_xquery(compile_clip(deptstore.mapping_fig9())))
        assert 'numProj="{count($d/Proj)}"' in text
        assert 'avg-sal="{avg($d/regEmp/sal/text())}"' in text

    def test_distribution_relocates_inside_host_constructor(self):
        text = serialize(
            emit_xquery(compile_clip(deptstore.mapping_fig4(context_arc=False)))
        )
        # The employee FLWOR appears inside the department constructor
        # even though the mappings are unrelated roots.
        dept_open = text.index("<department>")
        dept_close = text.index("</department>")
        emp = text.index("<employee")
        assert dept_open < emp < dept_close

    def test_target_variables_never_leak_primes(self):
        for fig in deptstore.FIGURES:
            text = serialize(emit_xquery(compile_clip(fig.make_mapping())))
            assert "'" not in text.replace("'", "", 0) or "′" not in text


class TestScalarFunctions:
    def _one_shot(self, function, sources):
        source = deptstore.source_schema()
        target = schema(
            elem("t", elem("o", "[0..*]", attr("v", STRING, required=False)))
        )
        clip = ClipMapping(source, target)
        clip.build("dept", "o", var="d")
        clip.value(sources, "o/@v", function=function)
        return clip

    def test_concat_renders_as_fn_concat(self):
        from repro.core.functions import CONCAT

        clip = self._one_shot(CONCAT, ["dept/dname/value", "dept/dname/value"])
        text = serialize(emit_xquery(compile_clip(clip)))
        assert "concat($d/dname/text(), $d/dname/text())" in text

    def test_arithmetic_renders_as_operators(self):
        from repro.core.functions import ADD

        clip = self._one_shot(ADD, ["dept/dname/value", "dept/dname/value"])
        text = serialize(emit_xquery(compile_clip(clip)))
        assert "($d/dname/text() + $d/dname/text())" in text

    def test_upper_renders_as_upper_case(self):
        from repro.core.functions import UPPER

        clip = self._one_shot(UPPER, "dept/dname/value")
        text = serialize(emit_xquery(compile_clip(clip)))
        assert "upper-case($d/dname/text())" in text


class TestCrossEngine:
    """The emitted query must compute exactly what the executor computes."""

    @pytest.mark.parametrize("fig", [f.figure for f in deptstore.FIGURES])
    def test_figures(self, fig, instance):
        tgd = compile_clip(deptstore.scenario(fig).make_mapping())
        assert run_query(emit_xquery(tgd), instance) == execute(tgd, instance)

    def test_generic_nested(self):
        source, target = generic.source_schema(), generic.target_schema()
        clip = generic.clip_mapping_nested(source, target)
        tgd = compile_clip(clip)
        instance = generic.sample_instance()
        assert run_query(emit_xquery(tgd), instance) == execute(tgd, instance)

    def test_generic_product(self):
        source, target = generic.source_schema(), generic.target_schema()
        clip = generic.clip_mapping_product(source, target)
        tgd = compile_clip(clip)
        instance = generic.sample_instance()
        assert run_query(emit_xquery(tgd), instance) == execute(tgd, instance)

    def test_clio_generated_tgds_also_emit(self, instance):
        """Clio-style tgds (several quantified generators per level)
        emit nested per-iteration constructors."""
        from repro.core.mapping import ValueMapping
        from repro.generation import generate_clio

        source = deptstore.source_schema()
        target = deptstore.target_schema_departments()
        vms = [
            ValueMapping(
                [source.value("dept/Proj/pname/value")],
                target.value("department/project/@name"),
            ),
            ValueMapping(
                [source.value("dept/regEmp/ename/value")],
                target.value("department/employee/@name"),
            ),
        ]
        result = generate_clio(source, target, vms)
        assert run_query(emit_xquery(result.tgd), instance) == execute(
            result.tgd, instance
        )
