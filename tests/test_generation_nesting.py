"""Unit tests for the nesting forest ([2] refinement)."""

from __future__ import annotations

from repro.core.mapping import ValueMapping
from repro.generation import (
    ActiveSkeleton,
    NestNode,
    Skeleton,
    Tableau,
    can_nest_under,
    compute_tableaux,
    nest_forest,
)
from repro.scenarios import generic


def _skeletons(generic_source, generic_target):
    src = compute_tableaux(generic_source)
    tgt = compute_tableaux(generic_target)
    by_name = {t.shorthand(): t for t in src + tgt}
    return by_name


class TestCanNest:
    def test_proper_componentwise_subset_with_proper_target(
        self, generic_source, generic_target
    ):
        names = _skeletons(generic_source, generic_target)
        a_f = ActiveSkeleton(Skeleton(names["{A}"], names["{F}"]), ())
        ab_fg = ActiveSkeleton(Skeleton(names["{A-B}"], names["{F-G}"]), ())
        assert can_nest_under(ab_fg, a_f)
        assert not can_nest_under(a_f, ab_fg)

    def test_equal_targets_cannot_nest(self, generic_source, generic_target):
        """'ABD → FG is not a sub-mapping of AB → FG … because the
        target side of the mappings is the same.'"""
        names = _skeletons(generic_source, generic_target)
        ab_fg = ActiveSkeleton(Skeleton(names["{A-B}"], names["{F-G}"]), ())
        abc_fg = ActiveSkeleton(Skeleton(names["{A-B-C}"], names["{F-G}"]), ())
        assert not can_nest_under(abc_fg, ab_fg)

    def test_incomparable_sources_cannot_nest(self, generic_source, generic_target):
        names = _skeletons(generic_source, generic_target)
        ab_fg = ActiveSkeleton(Skeleton(names["{A-B}"], names["{F-G}"]), ())
        ad_f = ActiveSkeleton(Skeleton(names["{A-D}"], names["{F}"]), ())
        assert not can_nest_under(ab_fg, ad_f)


class TestForest:
    def test_most_specific_parent_wins(self, generic_source, generic_target):
        """ABC→FG can nest under both A→F and AB→F; the most specific
        admissible parent (AB→F) wins.  A→F and AB→F share the target F,
        so neither nests under the other — both stay roots."""
        names = _skeletons(generic_source, generic_target)
        a_f = ActiveSkeleton(Skeleton(names["{A}"], names["{F}"]), ())
        ab_f = ActiveSkeleton(Skeleton(names["{A-B}"], names["{F}"]), ())
        abc_fg = ActiveSkeleton(Skeleton(names["{A-B-C}"], names["{F-G}"]), ())
        roots = nest_forest([a_f, ab_f, abc_fg])
        assert {r.active.skeleton.shorthand() for r in roots} == {
            "{A} -> {F}",
            "{A-B} -> {F}",
        }
        (ab_node,) = [r for r in roots if r.active is ab_f]
        (child,) = ab_node.children
        assert child.active is abc_fg

    def test_unrelated_mappings_stay_roots(self, generic_source, generic_target):
        names = _skeletons(generic_source, generic_target)
        ab_fg = ActiveSkeleton(Skeleton(names["{A-B}"], names["{F-G}"]), ())
        ad_fg = ActiveSkeleton(Skeleton(names["{A-D}"], names["{F-G}"]), ())
        roots = nest_forest([ab_fg, ad_fg])
        assert len(roots) == 2

    def test_walk(self, generic_source, generic_target):
        names = _skeletons(generic_source, generic_target)
        a_f = ActiveSkeleton(Skeleton(names["{A}"], names["{F}"]), ())
        ab_fg = ActiveSkeleton(Skeleton(names["{A-B}"], names["{F-G}"]), ())
        (root,) = nest_forest([a_f, ab_fg])
        assert [n.active for n in root.walk()] == [a_f, ab_fg]
