"""Unit tests for the XQuery-subset interpreter."""

from __future__ import annotations

import pytest

from repro.errors import XQueryError, XQueryTypeError
from repro.scenarios import deptstore
from repro.xml.model import element
from repro.xquery import ast
from repro.xquery.interp import evaluate_query, run_query


@pytest.fixture
def doc():
    return deptstore.source_instance()


def _path(*segments):
    return ast.path(ast.DocRoot(), *segments)


class TestPaths:
    def test_absolute_path_matches_root_name(self, doc):
        assert len(evaluate_query(_path("source", "dept"), doc)) == 2

    def test_absolute_path_with_wrong_root_is_empty(self, doc):
        assert evaluate_query(_path("wrong", "dept"), doc) == []

    def test_attribute_and_text_steps(self, doc):
        pids = evaluate_query(_path("source", "dept", "Proj", "@pid"), doc)
        assert pids == [1, 2, 1, 32]
        names = evaluate_query(_path("source", "dept", "dname", "text()"), doc)
        assert names == ["ICT", "Marketing"]

    def test_variable_based_path(self, doc):
        flwor = ast.Flwor(
            (ast.ForClause("d", _path("source", "dept")),),
            ast.path(ast.VarRef("d"), "Proj", "pname", "text()"),
        )
        assert evaluate_query(flwor, doc)[:2] == ["Appliances", "Robotics"]

    def test_step_on_atomic_raises(self, doc):
        bad = ast.path(ast.DocRoot(), "source", "dept", "dname", "text()", "deeper")
        with pytest.raises(XQueryTypeError):
            evaluate_query(bad, doc)


class TestFlwor:
    def test_for_iterates_let_binds_sequence(self, doc):
        flwor = ast.Flwor(
            (
                ast.LetClause("all", _path("source", "dept", "regEmp")),
                ast.ForClause("d", _path("source", "dept")),
            ),
            ast.FunctionCall("count", (ast.VarRef("all"),)),
        )
        assert evaluate_query(flwor, doc) == [7, 7]

    def test_where_filters_tuples(self, doc):
        flwor = ast.Flwor(
            (
                ast.ForClause("r", _path("source", "dept", "regEmp")),
                ast.WhereClause(
                    ast.ComparisonExpr(
                        ast.path(ast.VarRef("r"), "sal", "text()"),
                        ">",
                        ast.NumberLit(11000),
                    )
                ),
            ),
            ast.path(ast.VarRef("r"), "ename", "text()"),
        )
        assert evaluate_query(flwor, doc) == [
            "Andrew Clarence",
            "Richard Dawson",
            "Steven Aiking",
        ]

    def test_unbound_variable_raises(self, doc):
        with pytest.raises(XQueryError):
            evaluate_query(ast.VarRef("nope"), doc)


class TestComparisonsAndBooleans:
    def test_general_comparison_is_existential(self, doc):
        compare = ast.ComparisonExpr(
            _path("source", "dept", "Proj", "@pid"), "=", ast.NumberLit(32)
        )
        assert evaluate_query(compare, doc) == [True]

    def test_comparison_empty_sequence_is_false(self, doc):
        compare = ast.ComparisonExpr(
            _path("source", "nothing"), "=", ast.NumberLit(1)
        )
        assert evaluate_query(compare, doc) == [False]

    def test_type_mismatch_raises(self, doc):
        compare = ast.ComparisonExpr(
            _path("source", "dept", "dname", "text()"), "<", ast.NumberLit(1)
        )
        with pytest.raises(XQueryTypeError):
            evaluate_query(compare, doc)

    def test_and_expression(self, doc):
        expr = ast.AndExpr((ast.BoolLit(True), ast.BoolLit(False)))
        assert evaluate_query(expr, doc) == [False]

    def test_some_satisfies_with_is(self, doc):
        flwor = ast.Flwor(
            (
                ast.ForClause("d", _path("source", "dept")),
                ast.ForClause("p", ast.path(ast.VarRef("d"), "Proj")),
                ast.WhereClause(
                    ast.SomeExpr(
                        "m",
                        ast.path(ast.VarRef("d"), "Proj"),
                        ast.IsExpr(ast.VarRef("m"), ast.VarRef("p")),
                    )
                ),
            ),
            ast.path(ast.VarRef("p"), "@pid"),
        )
        assert evaluate_query(flwor, doc) == [1, 2, 1, 32]

    def test_is_requires_singleton_nodes(self, doc):
        expr = ast.IsExpr(_path("source", "dept"), _path("source", "dept"))
        with pytest.raises(XQueryTypeError):
            evaluate_query(expr, doc)


class TestFunctions:
    def test_distinct_values_first_occurrence_order(self, doc):
        expr = ast.FunctionCall(
            "distinct-values", (_path("source", "dept", "Proj", "pname", "text()"),)
        )
        assert evaluate_query(expr, doc) == [
            "Appliances",
            "Robotics",
            "Brand promotion",
        ]

    def test_count_and_exists(self, doc):
        assert evaluate_query(
            ast.FunctionCall("count", (_path("source", "dept", "regEmp"),)), doc
        ) == [7]
        assert evaluate_query(
            ast.FunctionCall("exists", (_path("source", "nope"),)), doc
        ) == [False]

    def test_numeric_aggregates(self, doc):
        sal = _path("source", "dept", "regEmp", "sal", "text()")
        assert evaluate_query(ast.FunctionCall("sum", (sal,)), doc) == [103500]
        assert evaluate_query(ast.FunctionCall("min", (sal,)), doc) == [10000]
        assert evaluate_query(ast.FunctionCall("max", (sal,)), doc) == [30000]

    def test_avg_returns_int_when_integral(self, doc):
        sal = _path("source", "dept", "regEmp", "sal", "text()")
        (value,) = evaluate_query(ast.FunctionCall("avg", (sal,)), doc)
        assert value == 103500 / 7

    def test_avg_of_empty_is_empty(self, doc):
        assert evaluate_query(ast.FunctionCall("avg", (_path("source", "no"),)), doc) == []

    def test_sum_of_empty_is_zero(self, doc):
        assert evaluate_query(ast.FunctionCall("sum", (_path("source", "no"),)), doc) == [0]

    def test_concat(self, doc):
        expr = ast.FunctionCall("concat", (ast.StringLit("a"), ast.NumberLit(1)))
        assert evaluate_query(expr, doc) == ["a1"]

    def test_case_functions(self, doc):
        assert evaluate_query(
            ast.FunctionCall("upper-case", (ast.StringLit("ict"),)), doc
        ) == ["ICT"]

    def test_unknown_function_raises(self, doc):
        with pytest.raises(XQueryError):
            evaluate_query(ast.FunctionCall("tokenize", (ast.StringLit("x"),)), doc)


class TestArithmetic:
    def test_operators(self, doc):
        two = ast.NumberLit(2)
        three = ast.NumberLit(3)
        assert evaluate_query(ast.ArithExpr(two, "+", three), doc) == [5]
        assert evaluate_query(ast.ArithExpr(two, "-", three), doc) == [-1]
        assert evaluate_query(ast.ArithExpr(two, "*", three), doc) == [6]
        assert evaluate_query(ast.ArithExpr(three, "div", two), doc) == [1.5]

    def test_div_by_zero(self, doc):
        with pytest.raises(XQueryError):
            evaluate_query(ast.ArithExpr(ast.NumberLit(1), "div", ast.NumberLit(0)), doc)

    def test_non_numeric_operand(self, doc):
        with pytest.raises(XQueryTypeError):
            evaluate_query(ast.ArithExpr(ast.StringLit("x"), "+", ast.NumberLit(1)), doc)


class TestConstructors:
    def test_attributes_atomize_and_omit_empty(self, doc):
        ctor = ast.ElementCtor(
            "out",
            (
                ast.AttributeCtor("n", _path("source", "dept", "dname", "text()")),
                ast.AttributeCtor("missing", _path("source", "nope")),
            ),
        )
        flwor = ast.Flwor(
            (ast.ForClause("d", _path("source", "dept")),),
            ast.ElementCtor(
                "out",
                (
                    ast.AttributeCtor("n", ast.path(ast.VarRef("d"), "dname", "text()")),
                    ast.AttributeCtor("m", ast.path(ast.VarRef("d"), "nope", "text()")),
                ),
            ),
        )
        results = evaluate_query(flwor, doc)
        assert [r.attribute("n") for r in results] == ["ICT", "Marketing"]
        assert not results[0].has_attribute("m")
        # Unfiltered multi-valued attribute is a type error:
        with pytest.raises(XQueryTypeError):
            evaluate_query(ctor, doc)

    def test_single_atomic_content_stays_typed(self, doc):
        ctor = ast.ElementCtor("n", (), (ast.NumberLit(5),))
        (out,) = evaluate_query(ctor, doc)
        assert out.text == 5

    def test_copied_element_content(self, doc):
        flwor = ast.Flwor(
            (ast.ForClause("p", _path("source", "dept", "Proj")),),
            ast.ElementCtor("keep", (), (ast.VarRef("p"),)),
        )
        results = evaluate_query(flwor, doc)
        assert len(results) == 4
        assert results[0].find("Proj").attribute("pid") == 1
        # Copies, not the original nodes:
        assert results[0].find("Proj") is not doc.find("dept").find("Proj")

    def test_mixing_text_and_elements_raises(self, doc):
        ctor = ast.ElementCtor(
            "bad", (), (ast.StringLit("text"), ast.ElementCtor("child"))
        )
        with pytest.raises(XQueryTypeError):
            evaluate_query(ctor, doc)

    def test_run_query_requires_single_root(self, doc):
        with pytest.raises(XQueryError):
            run_query(_path("source", "dept"), doc)
