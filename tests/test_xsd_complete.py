"""Tests for minimal instances and schema completion."""

from __future__ import annotations

from repro.scenarios import deptstore
from repro.xml.model import element
from repro.xsd.complete import complete, minimal_instance, type_default
from repro.xsd.dsl import attr, elem, schema
from repro.xsd.types import BOOLEAN, FLOAT, INT, STRING
from repro.xsd.validate import validate


class TestTypeDefaults:
    def test_defaults(self):
        assert type_default(STRING) == ""
        assert type_default(INT) == 0
        assert type_default(FLOAT) == 0.0
        assert type_default(BOOLEAN) is False


class TestMinimalInstance:
    def test_minimal_source_instance_is_valid(self):
        source = deptstore.source_schema()
        instance = minimal_instance(source)
        assert validate(instance, source) == []

    def test_minimum_occurrences_respected(self):
        source = deptstore.source_schema()
        instance = minimal_instance(source)
        assert len(instance.findall("dept")) == 1   # dept is [1..*]
        dept = instance.findall("dept")[0]
        assert dept.findall("Proj") == []            # Proj is [0..*]
        assert dept.find("dname").text == ""         # mandatory text defaulted

    def test_required_attributes_defaulted(self):
        target = schema(
            elem("t", elem("x", "[2..*]", attr("a", INT), attr("b", STRING, required=False)))
        )
        instance = minimal_instance(target)
        xs = instance.findall("x")
        assert len(xs) == 2
        assert xs[0].attribute("a") == 0
        assert not xs[0].has_attribute("b")

    def test_every_scenario_schema_has_a_valid_minimum(self):
        for factory in (
            deptstore.source_schema,
            deptstore.target_schema_departments,
            deptstore.target_schema_fig3,
            deptstore.target_schema_projemp,
            deptstore.target_schema_grouped_projects,
            deptstore.target_schema_inverted,
            deptstore.target_schema_aggregates,
        ):
            target = factory()
            assert validate(minimal_instance(target), target) == [], factory.__name__


class TestCompletion:
    def test_completion_fills_missing_mandatory_content(self):
        source = deptstore.source_schema()
        partial = element(
            "source",
            element("dept", element("Proj", pid=1)),  # dname, pname missing
        )
        assert validate(partial, source) != []
        completed = complete(partial, source)
        assert validate(completed, source) == []
        assert completed.find("dept").find("dname").text == ""
        assert completed.find("dept").find("Proj").find("pname").text == ""

    def test_completion_preserves_existing_content(self):
        source = deptstore.source_schema()
        instance = deptstore.source_instance()
        assert complete(instance, source) == instance

    def test_completion_adds_minimum_children(self):
        source = deptstore.source_schema()
        empty = element("source")
        completed = complete(empty, source)
        assert len(completed.findall("dept")) == 1
        assert validate(completed, source) == []

    def test_completion_keeps_undeclared_content(self):
        source = deptstore.source_schema()
        odd = element("source", element("dept", element("dname", text="x"), element("weird")))
        completed = complete(odd, source)
        assert completed.find("dept").find("weird") is not None

    def test_transformation_result_completion(self):
        """A fig3 result on an empty source misses the [1..*] employee…
        no — misses nothing; but a fig6 result on an empty source misses
        the mandatory project-emp, which completion supplies."""
        from repro.core.compile import compile_clip
        from repro.executor import execute

        clip = deptstore.mapping_fig6()
        empty = element("source", element("dept", element("dname", text="E")))
        out = execute(compile_clip(clip), empty)
        assert validate(out, clip.target) != []
        fixed = complete(out, clip.target)
        assert validate(fixed, clip.target) == []
