"""Unit tests for XML serialization (angle-bracket and paper-style ASCII)."""

from __future__ import annotations

from repro.xml.model import element
from repro.xml.parser import parse_xml
from repro.xml.serialize import to_ascii, to_xml


class TestToXml:
    def test_leaf_with_text(self):
        assert to_xml(element("sal", text=10000)) == "<sal>10000</sal>"

    def test_empty_element_self_closes(self):
        assert to_xml(element("area")) == "<area/>"

    def test_attributes_and_nesting(self):
        tree = element("Proj", element("pname", text="Robotics"), pid=2)
        text = to_xml(tree)
        assert '<Proj pid="2">' in text
        assert "  <pname>Robotics</pname>" in text

    def test_escaping_special_characters(self):
        tree = element("e", text='a<b&"c"', attr='x>"y"')
        text = to_xml(tree)
        assert "a&lt;b&amp;&quot;c&quot;" in text
        assert 'attr="x&gt;&quot;y&quot;"' in text

    def test_boolean_serializes_as_xsd_lexical(self):
        assert ">true<" in to_xml(element("b", text=True))

    def test_compact_mode(self):
        tree = element("p", element("c", text="v"))
        assert to_xml(tree, indent=None) == "<p><c>v</c></p>"

    def test_roundtrip_through_parser(self):
        tree = element(
            "source",
            element("dept", element("dname", text="ICT"), code="A&B"),
        )
        assert parse_xml(to_xml(tree)) == tree


class TestToAscii:
    def test_matches_paper_drawing_shape(self):
        tree = element(
            "target",
            element("department", element("employee", name="Andrew Clarence")),
        )
        assert to_ascii(tree) == (
            "target\n"
            "'---department\n"
            "    '---employee\n"
            "        '---@name = Andrew Clarence"
        )

    def test_middle_children_use_pipe_connector(self):
        tree = element("t", element("a"), element("b"))
        lines = to_ascii(tree).splitlines()
        assert lines[1].startswith("|---a")
        assert lines[2].startswith("'---b")

    def test_text_values_inline(self):
        tree = element("dept", element("dname", text="ICT"))
        assert "'---dname = ICT" in to_ascii(tree)

    def test_attributes_listed_before_children(self):
        tree = element("Proj", element("pname", text="X"), pid=1)
        lines = to_ascii(tree).splitlines()
        assert lines[1] == "|---@pid = 1"
        assert lines[2] == "'---pname = X"
