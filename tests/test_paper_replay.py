"""The whole paper, top to bottom, as one executable document.

Each test replays one passage of the publication in reading order and
asserts the artifact the paper prints at that point.  Run with ``-v``
to read the reproduction as a table of contents:

    Section I-A   the source instance and the desired output
    Section I-A   Clio's attempt and its failure
    Section II    each mapping example and its printed result
    Section III   the validity rules' lettered examples
    Section IV    every printed tgd
    Section V     tableaux, skeletons, Clio vs Clip generation
    Section VI    the XQuery translations
    Section VII   Table I
"""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.core.mapping import ValueMapping
from repro.executor import execute
from repro.generation import (
    compute_tableaux,
    generate_clio,
    generate_clip,
    product_tableau,
)
from repro.generation import measure_flexibility
from repro.scenarios import deptstore, generic
from repro.scenarios.published import TABLE1_ROWS
from repro.xquery import emit_xquery, run_query, serialize
from repro.xsd.validate import validate


@pytest.fixture(scope="module")
def instance():
    return deptstore.source_instance()


# ---------------------------------------------------------------- Section I-A


def test_section1_source_instance_shape(instance):
    """Two departments; ICT has 2 projects and 4 regEmps, Marketing has
    2 projects and 3 regEmps; @pids resolve within each dept."""
    depts = instance.findall("dept")
    assert [d.find("dname").text for d in depts] == ["ICT", "Marketing"]
    assert [len(d.findall("Proj")) for d in depts] == [2, 2]
    assert [len(d.findall("regEmp")) for d in depts] == [4, 3]
    assert validate(instance, deptstore.source_schema()) == []


def test_section1_desired_output_is_reachable(instance):
    out = execute(compile_clip(deptstore.mapping_fig1_desired()), instance)
    assert out == deptstore.expected_fig5()


def test_section1_clio_attempt_fails_as_printed(instance):
    """'it compiles to a transformation that outputs projects and
    employees, but encloses each node in a different department
    element'."""
    source = deptstore.source_schema()
    target = deptstore.target_schema_departments()
    vms = [
        ValueMapping([source.value("dept/Proj/pname/value")],
                     target.value("department/project/@name")),
        ValueMapping([source.value("dept/regEmp/ename/value")],
                     target.value("department/employee/@name")),
    ]
    out = execute(generate_clio(source, target, vms).tgd, instance)
    assert all(len(d.children) == 1 for d in out.findall("department"))
    assert len(out.findall("department")) == 11


# ---------------------------------------------------------------- Section II


@pytest.mark.parametrize("fig", [f.figure for f in deptstore.FIGURES])
def test_section2_examples(fig, instance):
    scenario = deptstore.scenario(fig)
    out = execute(compile_clip(scenario.make_mapping()), instance)
    expected = scenario.expected()
    assert out == expected if scenario.ordered else out.equals_canonically(expected)


def test_section2_minimum_cardinality_quote(instance):
    """'we adopt a minimum-cardinality principle and build as few
    elements as possible'."""
    out = execute(compile_clip(deptstore.mapping_fig3()), instance)
    assert len(out.findall("department")) == 1


# ---------------------------------------------------------------- Section III


def test_section3_safe_and_unsafe_builders(source_schema):
    from repro.core.mapping import ClipMapping
    from repro.core.validity import check
    from repro.xsd.dsl import attr, elem, schema
    from repro.xsd.types import STRING

    singleton_target = schema(
        elem("t", elem("one", attr("n", STRING, required=False)))
    )
    # a) single → repeating: safe.
    repeating_target = schema(
        elem("t", elem("many", "[0..*]", attr("n", STRING, required=False)))
    )
    safe = ClipMapping(source_schema, repeating_target)
    safe.build("dept/dname", "many", var="x")
    assert check(safe).is_valid
    # b) product → non-repeating: unsafe.
    unsafe = ClipMapping(source_schema, singleton_target)
    unsafe.build(["dept/Proj", "dept/regEmp"], "one", var=["p", "r"])
    assert check(unsafe).by_rule("SAFE_BUILDER")


def test_section3_invalid_mappings_are_enterable_but_rejected_at_compile(source_schema):
    from repro.core.mapping import ClipMapping
    from repro.errors import InvalidMappingError
    from repro.xsd.dsl import attr, elem, schema
    from repro.xsd.types import STRING

    target = schema(elem("t", elem("one", attr("n", STRING, required=False))))
    clip = ClipMapping(source_schema, target)
    clip.build("dept", "one", var="d")  # entering it succeeds (paper: not restricted)
    with pytest.raises(InvalidMappingError):
        compile_clip(clip)  # ascribing semantics does not


# ---------------------------------------------------------------- Section IV


def test_section4_simple_tgd_verbatim():
    assert str(compile_clip(deptstore.mapping_fig3())) == (
        "∀ d ∈ source.dept, r ∈ d.regEmp | r.sal.value > 11000 →\n"
        "  ∃ d′ ∈ target.department, r′ ∈ d′.employee |\n"
        "    r′.@name = r.ename.value"
    )


def test_section4_context_propagation_tgd_structure():
    tgd = compile_clip(deptstore.mapping_fig4())
    (root,) = tgd.roots
    assert len(root.submappings) == 1
    assert root.target_gens[0].var == "d'"


def test_section4_grouping_skolem_form():
    tgd = compile_clip(deptstore.mapping_fig7())
    text = str(tgd)
    assert "p′ = group-by(⊥, [p.pname.value])" in text


def test_section4_aggregates_tgd_verbatim():
    text = str(compile_clip(deptstore.mapping_fig9()))
    assert text.startswith("∃ count, avg(")
    assert "d′.@numProj = count(d.Proj)" in text
    assert "d′.@avg-sal = avg(d.regEmp.sal.value)" in text


# ---------------------------------------------------------------- Section V


def test_section5_dept_tableaux_quote():
    """'Clio detects three tableaux in that schema: {dept}, {dept-Proj},
    and {dept-Proj-regEmp, @pid=@pid}.'"""
    tableaux = compute_tableaux(deptstore.source_schema())
    assert [t.shorthand() for t in tableaux] == [
        "{dept}",
        "{dept-Proj}",
        "{dept-regEmp-Proj, @pid=@pid}",
    ]


def test_section5_clio_emits_the_printed_tgd():
    source = deptstore.source_schema()
    target = deptstore.target_schema_departments()
    vms = [
        ValueMapping([source.value("dept/regEmp/ename/value")],
                     target.value("department/employee/@name")),
    ]
    text = str(generate_clio(source, target, vms).tgd)
    assert "∃ d′ ∈ target.department, e′ ∈ d′.employee" in text
    assert "e′.@name = r.ename.value" in text


def test_section5_extension_first_example(generic_source, generic_target):
    vms = generic.value_mappings_bd(generic_source, generic_target)
    text = str(generate_clip(generic_source, generic_target, vms).tgd)
    assert text == (
        "∀ a ∈ ROOT.A →\n"
        "  ∃ f′ ∈ TROOT.F\n"
        "    [∀ b ∈ a.B →\n"
        "      ∃ g′ ∈ f′.G |\n"
        "        g′.@att2 = b.@bval],\n"
        "    [∀ d ∈ a.D →\n"
        "      ∃ g2′ ∈ f′.G |\n"
        "        g2′.@att3 = d.@dval]"
    )


def test_section5_extension_product_example(generic_source, generic_target):
    vms = generic.value_mappings_bd(generic_source, generic_target)
    abd = product_tableau(
        generic_source,
        [generic_source.element("A/B"), generic_source.element("A/D")],
    )
    text = str(
        generate_clip(
            generic_source, generic_target, vms, extra_source_tableaux=[abd]
        ).tgd
    )
    assert text == (
        "∀ a ∈ ROOT.A →\n"
        "  ∃ f′ ∈ TROOT.F\n"
        "    [∀ b ∈ a.B, d ∈ a.D →\n"
        "      ∃ g′ ∈ f′.G |\n"
        "        g′.@att2 = b.@bval,\n"
        "        g′.@att3 = d.@dval]"
    )


# ---------------------------------------------------------------- Section VI


def test_section6_constant_tags_wrap_the_flwor():
    text = serialize(emit_xquery(compile_clip(deptstore.mapping_fig3())))
    assert text.index("<department>") < text.index("for $d in source/dept")


def test_section6_grouping_template_as_printed(instance):
    text = serialize(emit_xquery(compile_clip(deptstore.mapping_fig7())))
    for fragment in ("let $context", "distinct-values(", "let $group"):
        assert fragment in text
    tgd = compile_clip(deptstore.mapping_fig7())
    assert run_query(emit_xquery(tgd), instance) == execute(tgd, instance)


def test_section6_aggregate_translation_as_printed():
    text = serialize(emit_xquery(compile_clip(deptstore.mapping_fig9())))
    assert 'numProj="{count($d/Proj)}"' in text


# ---------------------------------------------------------------- Section VII


def test_section7_table1_lower_bounds():
    for factory in TABLE1_ROWS:
        example = factory()
        result = measure_flexibility(
            example.source, example.target, list(example.value_mappings),
            example.witness,
        )
        assert result.extra >= example.paper_extra, example.row
        assert len(result.clip_outputs) > len(result.clio_outputs), example.row
