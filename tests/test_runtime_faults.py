"""Fault-tolerant batch execution: policies, retries, timeouts, crashes.

The batch runtime's fault contract (per-document isolation under
``skip``/``collect``, deterministic retry/backoff, per-document
timeouts, single pool rebuild on worker loss) exercised across every
error policy × engine × worker count, driven by the deterministic
:class:`FaultInjector` harness.

Worker counts honor ``CLIP_TEST_WORKERS`` so the CI matrix re-runs the
pool path at 2 and 4 workers; the default run covers the in-process
path plus a 2-worker pool spot check.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (
    DocumentFailureError,
    DocumentTimeout,
    ExecutionError,
    TransientError,
    WorkerSetupError,
)
from repro.runtime import (
    BatchMetrics,
    BatchRunner,
    ErrorPolicy,
    Fault,
    FaultInjector,
    PlanCache,
    RetryPolicy,
    call_with_timeout,
    is_transient,
    write_dead_letters,
)
from repro.runtime import batch as batch_module
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance
from repro.xml.serialize import to_xml

_ENV_WORKERS = int(os.environ.get("CLIP_TEST_WORKERS", "1"))
#: 1 (in-process) plus the matrix-supplied pool width; the default run
#: still exercises the pool once via the dedicated pool tests below.
WORKER_COUNTS = sorted({1, _ENV_WORKERS})

POLICIES = ("fail_fast", "skip", "collect")
ENGINES = ("tgd", "xquery", "xslt")


def _docs(count: int) -> list:
    return [
        make_deptstore_instance(
            DeptstoreSpec(
                departments=1,
                projects_per_dept=1,
                employees_per_dept=2,
                seed=seed,
            )
        )
        for seed in range(count)
    ]


@pytest.fixture(scope="module")
def mapping():
    # Figure 4 is the one scenario all three engines support.
    return deptstore.mapping_fig4()


@pytest.fixture(scope="module")
def documents():
    return _docs(10)


@pytest.fixture(scope="module")
def clean_outputs(mapping, documents):
    """Fault-free reference outputs per engine (workers=1)."""
    return {
        engine: [
            to_xml(result)
            for result in BatchRunner(
                mapping, engine=engine, cache=PlanCache()
            ).run(documents)
        ]
        for engine in ENGINES
    }


# -- the policy × engine × workers matrix -----------------------------------


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("policy", POLICIES)
def test_policy_engine_worker_matrix(
    policy, engine, workers, mapping, documents, clean_outputs
):
    faulted = {2, 5}
    injector = FaultInjector({index: Fault() for index in faulted})
    runner = BatchRunner(
        mapping,
        engine=engine,
        workers=workers,
        cache=PlanCache(),
        error_policy=policy,
        injector=injector,
    )
    if policy == "fail_fast":
        with pytest.raises(DocumentFailureError) as excinfo:
            runner.run(documents)
        assert excinfo.value.failure.index in faulted
        assert excinfo.value.failure.error == "ExecutionError"
        return
    batch = runner.run(documents)
    expected_indices = [
        index for index in range(len(documents)) if index not in faulted
    ]
    assert batch.success_indices == expected_indices
    assert [to_xml(result) for result in batch.results] == [
        clean_outputs[engine][index] for index in expected_indices
    ]
    assert {failure.index for failure in batch.failures} == faulted
    assert batch.metrics.failures == len(faulted)
    assert batch.metrics.documents == len(documents) - len(faulted)
    if policy == "collect":
        assert [letter.failure.index for letter in batch.dead_letters] == sorted(
            faulted
        )
        assert batch.metrics.dead_letter == len(faulted)
    else:
        assert batch.dead_letters == []
        assert batch.metrics.dead_letter == 0


# -- acceptance: 10% faults over 100 documents ------------------------------


@pytest.mark.parametrize("workers", sorted({1, 4, _ENV_WORKERS}))
@pytest.mark.parametrize("engine", ENGINES)
def test_collect_hundred_documents_ten_percent_faults(
    engine, workers, mapping, dead_letter_dir
):
    documents = _docs(100)
    faulted = set(range(5, 100, 10))  # 10 of 100
    injector = FaultInjector({index: Fault() for index in faulted})
    clean = BatchRunner(mapping, engine=engine, cache=PlanCache()).run(
        documents
    )
    batch = BatchRunner(
        mapping,
        engine=engine,
        workers=workers,
        cache=PlanCache(),
        error_policy="collect",
        injector=injector,
    ).run(documents)
    # The run completes, successes byte-identical to the fault-free
    # run's corresponding documents.
    assert [to_xml(result) for result in batch.results] == [
        to_xml(clean.results[index]) for index in batch.success_indices
    ]
    assert batch.metrics.to_dict()["failures"] == 10
    # The dead-letter dir holds exactly the 10 failed inputs.
    directory = dead_letter_dir / f"{engine}-{workers}"
    write_dead_letters(batch.dead_letters, str(directory))
    letters = sorted(p for p in os.listdir(directory) if p.endswith(".xml"))
    assert len(letters) == 10
    assert letters == [f"dead-letter-{index:05d}.xml" for index in sorted(faulted)]
    for index in sorted(faulted):
        written = (directory / f"dead-letter-{index:05d}.xml").read_text(
            encoding="utf-8"
        )
        assert written == to_xml(documents[index])
    manifest = json.loads((directory / "failures.json").read_text("utf-8"))
    assert [entry["index"] for entry in manifest] == sorted(faulted)
    assert all(entry["error"] == "ExecutionError" for entry in manifest)


# -- worker-crash recovery ---------------------------------------------------


def test_killed_worker_one_rebuild_no_lost_documents(mapping, documents):
    injector = FaultInjector({4: Fault(kind="exit", attempts=1)})
    clean = BatchRunner(mapping, cache=PlanCache()).run(documents)
    batch = BatchRunner(
        mapping,
        workers=2,
        cache=PlanCache(),
        error_policy="collect",
        injector=injector,
    ).run(documents)
    assert batch.metrics.pool_rebuilds == 1
    assert batch.metrics.failures == 0
    assert len(batch.results) == len(documents)
    assert [to_xml(result) for result in batch.results] == [
        to_xml(result) for result in clean.results
    ]


def test_worker_killed_on_every_attempt_raises(mapping, documents):
    # attempts=-1: the fault fires on the replay too → second crash →
    # the runner gives up instead of rebuilding forever.
    injector = FaultInjector({4: Fault(kind="exit", attempts=-1)})
    with pytest.raises(ExecutionError):
        BatchRunner(
            mapping,
            workers=2,
            cache=PlanCache(),
            error_policy="collect",
            injector=injector,
        ).run(documents)


# -- retry / backoff / timeout ----------------------------------------------


def test_transient_fault_healed_by_retries(mapping, documents):
    injector = FaultInjector(
        {3: Fault(error="TransientError", attempts=2)}
    )
    batch = BatchRunner(
        mapping,
        cache=PlanCache(),
        max_retries=2,
        backoff=0.0,
        injector=injector,
    ).run(documents)
    assert batch.metrics.retries == 2
    assert batch.metrics.failures == 0
    assert len(batch.results) == len(documents)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_transient_fault_exhausts_retries(workers, mapping, documents):
    injector = FaultInjector({3: Fault(error="TransientError", attempts=-1)})
    batch = BatchRunner(
        mapping,
        workers=workers,
        cache=PlanCache(),
        error_policy="collect",
        max_retries=2,
        backoff=0.0,
        injector=injector,
    ).run(documents)
    assert batch.metrics.retries == 2
    assert batch.metrics.failures == 1
    [failure] = batch.failures
    assert failure.index == 3
    assert failure.attempts == 3
    assert failure.transient


def test_permanent_error_not_retried(mapping, documents):
    injector = FaultInjector({3: Fault(error="ExecutionError", attempts=-1)})
    batch = BatchRunner(
        mapping,
        cache=PlanCache(),
        error_policy="collect",
        max_retries=5,
        backoff=0.0,
        injector=injector,
    ).run(documents)
    assert batch.metrics.retries == 0
    [failure] = batch.failures
    assert failure.attempts == 1
    assert not failure.transient


def test_timeout_is_transient_and_counted(mapping, documents):
    injector = FaultInjector({5: Fault(kind="delay", seconds=1.0, attempts=1)})
    batch = BatchRunner(
        mapping,
        cache=PlanCache(),
        error_policy="collect",
        max_retries=1,
        backoff=0.0,
        timeout=0.1,
        injector=injector,
    ).run(documents)
    # Attempt 0 times out (transient) → retried; attempt 1 runs clean.
    assert batch.metrics.timeouts == 1
    assert batch.metrics.retries == 1
    assert batch.metrics.failures == 0
    assert len(batch.results) == len(documents)


def test_timeout_every_attempt_dead_letters(mapping, documents):
    injector = FaultInjector({5: Fault(kind="delay", seconds=1.0, attempts=-1)})
    batch = BatchRunner(
        mapping,
        cache=PlanCache(),
        error_policy="collect",
        max_retries=1,
        backoff=0.0,
        timeout=0.05,
        injector=injector,
    ).run(documents)
    assert batch.metrics.timeouts == 2
    [failure] = batch.failures
    assert failure.error == "DocumentTimeout"
    assert failure.timed_out


def test_backoff_schedule_is_deterministic():
    policy = RetryPolicy(max_retries=5, backoff=0.1, backoff_factor=2.0,
                         max_backoff=0.5)
    assert [policy.delay(n) for n in (1, 2, 3, 4, 5)] == [
        0.1, 0.2, 0.4, 0.5, 0.5,
    ]
    assert RetryPolicy(backoff=0.0).delay(1) == 0.0


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0.0)


def test_call_with_timeout_passthrough_and_overrun():
    assert call_with_timeout(lambda: 42, None) == 42
    assert call_with_timeout(lambda: 42, 5.0) == 42
    with pytest.raises(DocumentTimeout):
        import time

        call_with_timeout(lambda: time.sleep(1.0), 0.05)


def test_transient_classification():
    assert is_transient(TransientError("x"))
    assert is_transient(DocumentTimeout("x"))
    assert is_transient(OSError("x"))
    assert not is_transient(ExecutionError("x"))
    assert not is_transient(ValueError("x"))


# -- fail_fast semantics ------------------------------------------------------


def test_fail_fast_preserves_cause_in_process(mapping, documents):
    injector = FaultInjector({2: Fault()})
    with pytest.raises(DocumentFailureError) as excinfo:
        BatchRunner(mapping, cache=PlanCache(), injector=injector).run(
            documents
        )
    assert isinstance(excinfo.value.__cause__, ExecutionError)
    assert excinfo.value.failure.traceback  # truncated traceback captured


def test_error_policy_coercion():
    assert ErrorPolicy.coerce("collect") is ErrorPolicy.COLLECT
    assert ErrorPolicy.coerce(ErrorPolicy.SKIP) is ErrorPolicy.SKIP
    with pytest.raises(ValueError):
        ErrorPolicy.coerce("explode")
    with pytest.raises(ValueError):
        BatchRunner(deptstore.mapping_fig4(), error_policy="explode")


# -- spawn-importability guard ------------------------------------------------


def test_spawn_guard_names_the_fix(monkeypatch):
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    monkeypatch.delenv("PYTHONPATH", raising=False)
    with pytest.raises(WorkerSetupError) as excinfo:
        batch_module._require_importable_for_spawn(ctx)
    assert "PYTHONPATH" in str(excinfo.value)
    assert "spawn" in str(excinfo.value)


def test_spawn_guard_passes_with_pythonpath(monkeypatch):
    import multiprocessing

    import repro

    package_root = os.path.abspath(
        os.path.join(os.path.dirname(repro.__file__), os.pardir)
    )
    ctx = multiprocessing.get_context("spawn")
    monkeypatch.setenv("PYTHONPATH", package_root)
    batch_module._require_importable_for_spawn(ctx)  # no raise


def test_spawn_guard_wired_into_pool_path(monkeypatch, mapping, documents):
    import multiprocessing

    monkeypatch.delenv("PYTHONPATH", raising=False)
    monkeypatch.setattr(
        batch_module,
        "_pool_context",
        lambda: multiprocessing.get_context("spawn"),
    )
    with pytest.raises(WorkerSetupError):
        BatchRunner(mapping, workers=2, cache=PlanCache()).run(documents[:2])


def test_fork_path_ignores_guard():
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("no fork start method on this platform")
    ctx = multiprocessing.get_context("fork")
    batch_module._require_importable_for_spawn(ctx)  # no raise


# -- fault injector harness ---------------------------------------------------


def test_injector_wrap_fires_by_call_order(mapping):
    from repro.runtime import compile_plan

    plan = compile_plan(mapping)
    injected = FaultInjector({1: Fault()}).wrap(plan)
    docs = _docs(3)
    injected(docs[0])
    with pytest.raises(ExecutionError):
        injected(docs[1])
    injected(docs[2])


def test_injector_validates_fault_kind():
    with pytest.raises(ValueError):
        Fault(kind="meltdown")


def test_injector_unknown_error_name_falls_back():
    fault = Fault(error="NoSuchError")
    assert fault.resolve_error() is ExecutionError


# -- metrics v2 ---------------------------------------------------------------


def test_metrics_v2_schema_and_roundtrip(mapping, documents):
    injector = FaultInjector({1: Fault()})
    batch = BatchRunner(
        mapping,
        cache=PlanCache(),
        error_policy="collect",
        injector=injector,
    ).run(documents)
    doc = batch.metrics.to_dict()
    assert doc["version"] == 2
    assert doc["error_policy"] == "collect"
    assert doc["failures"] == 1
    assert doc["dead_letter"] == 1
    assert doc["retries"] == 0
    assert doc["timeouts"] == 0
    assert doc["pool_rebuilds"] == 0
    parsed = BatchMetrics.from_dict(doc)
    assert parsed.to_dict() == doc
    assert BatchMetrics.from_json(batch.metrics.to_json()).to_dict() == doc


def test_metrics_v1_documents_still_parse():
    v1 = {
        "format": "clip-batch-metrics",
        "version": 1,
        "engine": "tgd",
        "workers": 4,
        "documents": 100,
        "plan_cache": {"hits": 99, "misses": 1, "evictions": 0,
                       "compile_seconds": 0.0004},
        "timings": {"compile_seconds": 0.0004, "execute_seconds": 0.031,
                    "wall_seconds": 0.033},
        "source_elements": 12000,
        "target_elements": 4200,
        "validation_violations": 0,
        "stages": [{"index": 0, "source_root": "source",
                    "target_root": "target", "documents": 100,
                    "execute_seconds": 0.031, "violations": 0}],
    }
    metrics = BatchMetrics.from_dict(v1)
    assert metrics.documents == 100
    assert metrics.failures == 0
    assert metrics.error_policy == "fail_fast"
    assert metrics.stages[0].failures == 0
    with pytest.raises(ValueError):
        BatchMetrics.from_dict({"format": "clip-batch-metrics", "version": 99,
                                "engine": "tgd", "workers": 1})
    with pytest.raises(ValueError):
        BatchMetrics.from_dict({"format": "something-else"})


# -- pipeline stage-level propagation ----------------------------------------


@pytest.fixture(scope="module")
def publications_pipeline():
    from repro.pipeline import Pipeline
    from repro.scenarios import publications

    return Pipeline(
        [publications.normalize_mapping(), publications.publish_mapping()]
    )


@pytest.fixture(scope="module")
def feeds():
    from repro.scenarios import publications

    return [publications.feed_instance() for _ in range(4)]


def test_pipeline_stage_failure_dead_letters_stage_input(
    publications_pipeline, feeds
):
    clean = publications_pipeline.run_batch(feeds, cache=PlanCache())
    batch = publications_pipeline.run_batch(
        feeds,
        cache=PlanCache(),
        error_policy="collect",
        injectors={1: FaultInjector({1: Fault()})},
    )
    assert batch.success_indices == [0, 2, 3]
    assert [to_xml(result) for result in batch.results] == [
        to_xml(clean.results[index]) for index in (0, 2, 3)
    ]
    [failure] = batch.failures
    assert failure.index == 1
    assert failure.stage == 1
    # The dead letter holds what the failing stage consumed — the
    # stage-0 output, not the original feed.
    [letter] = batch.dead_letters
    assert letter.document.tag == "catalog"
    stage_metrics = batch.metrics.stages
    assert stage_metrics[0].failures == 0
    assert stage_metrics[1].failures == 1
    assert batch.metrics.failures == 1
    assert batch.metrics.documents == 3


def test_pipeline_failed_document_not_fed_downstream(
    publications_pipeline, feeds
):
    batch = publications_pipeline.run_batch(
        feeds,
        cache=PlanCache(),
        error_policy="skip",
        injectors={0: FaultInjector({0: Fault()})},
    )
    # Stage 1 saw only the three stage-0 survivors.
    assert batch.metrics.stages[0].documents == 4
    assert batch.metrics.stages[1].documents == 3
    assert batch.success_indices == [1, 2, 3]


def test_pipeline_fail_fast_reports_stage(publications_pipeline, feeds):
    with pytest.raises(DocumentFailureError) as excinfo:
        publications_pipeline.run_batch(
            feeds,
            cache=PlanCache(),
            injectors={1: FaultInjector({2: Fault()})},
        )
    assert excinfo.value.failure.stage == 1
    assert excinfo.value.failure.index == 2


# -- property: collect == the fault-free successes, dead letters == faults ---


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(faulted=st.sets(st.integers(min_value=0, max_value=11), max_size=12))
def test_collect_partition_property(faulted, mapping):
    """For any scripted fault pattern: ``collect`` returns exactly the
    successes a fault-free run produces, in order, and the dead-letter
    set equals the injected-fault set."""
    documents = _docs(12)
    clean = BatchRunner(mapping, cache=PlanCache()).run(documents)
    injector = FaultInjector({index: Fault() for index in faulted})
    batch = BatchRunner(
        mapping,
        cache=PlanCache(),
        error_policy="collect",
        injector=injector,
    ).run(documents)
    expected_indices = [
        index for index in range(len(documents)) if index not in faulted
    ]
    assert batch.success_indices == expected_indices
    assert [to_xml(result) for result in batch.results] == [
        to_xml(clean.results[index]) for index in expected_indices
    ]
    assert {letter.failure.index for letter in batch.dead_letters} == set(
        faulted
    )
    assert batch.metrics.failures == len(faulted)
    assert batch.metrics.dead_letter == len(faulted)


# -- CLI flags ----------------------------------------------------------------


class TestCliFaultFlags:
    @pytest.fixture()
    def mapping_file(self, tmp_path):
        from repro.io import save

        path = tmp_path / "mapping.json"
        save(deptstore.mapping_fig4(), str(path))
        return str(path)

    @pytest.fixture()
    def source_files(self, tmp_path):
        paths = []
        for seed in range(3):
            doc = make_deptstore_instance(
                DeptstoreSpec(departments=1, projects_per_dept=1,
                              employees_per_dept=2, seed=seed)
            )
            path = tmp_path / f"src{seed}.xml"
            path.write_text(to_xml(doc), encoding="utf-8")
            paths.append(str(path))
        return paths

    def test_collect_run_reports_zero_failures(
        self, mapping_file, source_files, tmp_path, dead_letter_dir, capsys
    ):
        from repro.cli import main

        metrics_path = tmp_path / "metrics.json"
        letters = dead_letter_dir / "batch"
        assert main(
            ["batch", mapping_file, *source_files,
             "--error-policy", "collect", "--max-retries", "2",
             "--timeout", "30", "--dead-letter-dir", str(letters),
             "--metrics-json", str(metrics_path)]
        ) == 0
        doc = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert doc["version"] == 2
        assert doc["error_policy"] == "collect"
        assert doc["failures"] == 0
        assert doc["documents"] == 3
        # No failures → no dead-letter directory is created.
        assert not letters.exists()

    def test_dead_letter_dir_promotes_policy(self, mapping_file, source_files,
                                             tmp_path, dead_letter_dir):
        from repro.cli import main

        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["batch", mapping_file, *source_files,
             "--dead-letter-dir", str(dead_letter_dir / "batch"),
             "--metrics-json", str(metrics_path)]
        ) == 0
        doc = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert doc["error_policy"] == "collect"

    def test_bad_retry_and_timeout_flags_rejected(self, mapping_file,
                                                  source_files):
        from repro.cli import main

        assert main(
            ["batch", mapping_file, source_files[0], "--max-retries", "-1"]
        ) == 2
        assert main(
            ["batch", mapping_file, source_files[0], "--timeout", "0"]
        ) == 2
