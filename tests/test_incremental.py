"""Incremental recomputation (:mod:`repro.runtime.incremental`).

The single load-bearing contract, asserted everywhere below: whatever
path the incremental layer takes — unchanged, scoped, fallback;
stateless or session; delta recomputed or supplied — the serialized
target is byte-identical to ``plan.run(new_source)``.  Everything else
(reuse counters, cache survival, mode selection) is about doing less
work, never different work.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compile import compile_clip
from repro.errors import ReproError
from repro.executor.engine import prepare
from repro.executor.planner import PlanMemo
from repro.runtime.incremental import (
    DEFAULT_THRESHOLD,
    IncrementalSession,
    transform_delta,
)
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance
from repro.xml.diff import Delta, compute_delta
from repro.xml.serialize import to_xml

FIGURES = {
    "fig3": deptstore.mapping_fig3,
    "fig5": deptstore.mapping_fig5,
    "fig7": deptstore.mapping_fig7,
    "fig9": deptstore.mapping_fig9,
}

_SPEC = DeptstoreSpec(departments=4, projects_per_dept=3,
                      employees_per_dept=5)


def _plan(figure: str, *, optimize: bool = True):
    return prepare(compile_clip(FIGURES[figure]()), optimize=optimize)


def _instance():
    return make_deptstore_instance(_SPEC)


def _edit_pname(doc, value: str, index: int = 0):
    projects = [p for d in doc.findall("dept") for p in d.findall("Proj")]
    field = projects[index % len(projects)].find("pname")
    field.clear_text()
    field.set_text(value)


def _edit_ename(doc, value: str, index: int = 0):
    employees = [e for d in doc.findall("dept") for e in d.findall("regEmp")]
    field = employees[index % len(employees)].find("ename")
    field.clear_text()
    field.set_text(value)


def _drop_project(doc, index: int = 0):
    projects = [p for d in doc.findall("dept") for p in d.findall("Proj")]
    target = projects[index % len(projects)]
    target.parent.remove(target)


_EDITS = {
    "pname": _edit_pname,
    "ename": _edit_ename,
}


class TestStatelessTransformDelta:
    @pytest.mark.parametrize("figure", sorted(FIGURES))
    @pytest.mark.parametrize("optimize", [True, False])
    def test_single_edit_is_byte_identical(self, figure, optimize):
        plan = _plan(figure, optimize=optimize)
        old = _instance()
        old_target = plan.run(old)
        new = old.copy()
        _edit_pname(new, "renamed project")
        delta = compute_delta(old, new)
        got, report = transform_delta(plan, old, old_target, delta)
        assert to_xml(got) == to_xml(plan.run(new))
        assert report.mode in ("unchanged", "scoped", "fallback")

    def test_empty_delta_returns_previous_target_unchanged(self):
        plan = _plan("fig3")
        old = _instance()
        old_target = plan.run(old)
        delta = compute_delta(old, old.copy())
        got, report = transform_delta(plan, old, old_target, delta)
        assert report.mode == "unchanged"
        assert to_xml(got) == to_xml(old_target)

    def test_scoped_mode_reuses_most_units_for_one_field_edit(self):
        """Read-anchored dirtiness: one pname edit on the grouping
        mapping dirties the affected group(s), not the document."""
        plan = _plan("fig7")
        old = _instance()
        old_target = plan.run(old)
        new = old.copy()
        _edit_pname(new, "a genuinely new name")
        delta = compute_delta(old, new)
        got, report = transform_delta(plan, old, old_target, delta)
        assert to_xml(got) == to_xml(plan.run(new))
        assert report.mode == "scoped"
        assert report.total_units > 2
        assert report.reused_units >= report.total_units - 2
        assert report.reused_units + report.recomputed_units == report.total_units

    def test_large_delta_falls_back_by_threshold(self):
        plan = _plan("fig3")
        old = _instance()
        old_target = plan.run(old)
        new = old.copy()
        for index in range(60):
            _edit_ename(new, f"renamed {index}", index)
            _edit_pname(new, f"renamed {index}", index)
        delta = compute_delta(old, new)
        assert delta.ratio(old.size()) > DEFAULT_THRESHOLD
        got, report = transform_delta(plan, old, old_target, delta)
        assert report.mode == "fallback"
        assert "threshold" in report.reason
        assert to_xml(got) == to_xml(plan.run(new))

    def test_structural_edit_is_byte_identical(self):
        plan = _plan("fig7")
        old = _instance()
        old_target = plan.run(old)
        new = old.copy()
        _drop_project(new, 2)
        delta = compute_delta(old, new)
        got, _report = transform_delta(plan, old, old_target, delta)
        assert to_xml(got) == to_xml(plan.run(new))

    def test_report_counters_are_consistent(self):
        plan = _plan("fig5")
        old = _instance()
        old_target = plan.run(old)
        new = old.copy()
        _edit_ename(new, "somebody else")
        delta = compute_delta(old, new)
        _got, report = transform_delta(plan, old, old_target, delta)
        assert report.delta_records == len(delta.records)
        assert report.changed_nodes == delta.changed_nodes
        assert report.threshold == DEFAULT_THRESHOLD
        assert 0.0 < report.delta_ratio <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(
        figure=st.sampled_from(sorted(FIGURES)),
        edits=st.lists(
            st.tuples(
                st.sampled_from(sorted(_EDITS)),
                st.integers(min_value=0, max_value=40),
                st.text(
                    alphabet="abcdefgh ", min_size=1, max_size=12
                ),
            ),
            min_size=1,
            max_size=5,
        ),
    )
    def test_hypothesis_edit_scripts_stay_byte_identical(self, figure, edits):
        plan = _plan(figure)
        old = _instance()
        old_target = plan.run(old)
        new = old.copy()
        for kind, index, value in edits:
            _EDITS[kind](new, value, index)
        delta = compute_delta(old, new)
        got, _report = transform_delta(plan, old, old_target, delta)
        assert to_xml(got) == to_xml(plan.run(new))


class TestIncrementalSession:
    def test_first_call_is_a_full_run(self):
        plan = _plan("fig7")
        session = IncrementalSession(plan)
        doc = _instance()
        got, report = session.transform(doc)
        assert report.mode == "fallback"
        assert report.reason == "no previous state"
        assert to_xml(got) == to_xml(plan.run(doc))

    @pytest.mark.parametrize("figure", sorted(FIGURES))
    @pytest.mark.parametrize("optimize", [True, False])
    def test_chained_transforms_stay_byte_identical(self, figure, optimize):
        plan = _plan(figure, optimize=optimize)
        session = IncrementalSession(plan)
        doc = _instance()
        session.transform(doc)
        for step in range(6):
            doc = doc.copy()
            if step % 3 == 0:
                _edit_pname(doc, f"step {step}", step)
            elif step % 3 == 1:
                _edit_ename(doc, f"step {step}", step)
            else:
                _drop_project(doc, step)
            got, _report = session.transform(doc)
            assert to_xml(got) == to_xml(plan.run(doc))

    def test_input_documents_are_never_mutated_or_retained(self):
        plan = _plan("fig7")
        session = IncrementalSession(plan)
        doc = _instance()
        before = to_xml(doc)
        session.transform(doc)
        edited = doc.copy()
        _edit_pname(edited, "changed")
        session.transform(edited)
        # Mutating the caller's documents after the fact must not
        # disturb the session's maintained state.
        _edit_ename(doc, "scribbled over")
        _edit_ename(edited, "scribbled over")
        third = doc.copy()
        got, _report = session.transform(third)
        assert to_xml(got) == to_xml(plan.run(third))
        assert to_xml(doc) != before  # we really did scribble

    def test_unchanged_document_short_circuits(self):
        plan = _plan("fig7")
        session = IncrementalSession(plan)
        doc = _instance()
        session.transform(doc)
        _got, report = session.transform(doc.copy())
        assert report.mode == "unchanged"
        assert report.reason == "empty delta"

    def test_apply_requires_an_established_session(self):
        session = IncrementalSession(_plan("fig7"))
        with pytest.raises(ReproError, match="no base document"):
            session.apply(Delta(records=()))

    def test_apply_rejects_truncated_deltas(self):
        plan = _plan("fig7")
        session = IncrementalSession(plan)
        session.transform(_instance())
        with pytest.raises(ReproError, match="truncated"):
            session.apply(Delta(records=(), truncated=True))

    @pytest.mark.parametrize("figure", sorted(FIGURES))
    def test_chained_applies_match_full_runs(self, figure):
        plan = _plan(figure)
        session = IncrementalSession(plan)
        doc = _instance()
        session.transform(doc)
        for step in range(6):
            new = doc.copy()
            if step % 3 == 2:
                _drop_project(new, step)
            else:
                _edit_pname(new, f"delta step {step}", step)
            delta = compute_delta(doc, new)
            got, _report = session.apply(delta)
            assert to_xml(got) == to_xml(plan.run(new))
            doc = new

    def test_apply_mode_mix_for_small_edits_is_incremental(self):
        plan = _plan("fig7")
        session = IncrementalSession(plan)
        doc = _instance()
        session.transform(doc)
        modes = []
        for step in range(5):
            new = doc.copy()
            _edit_pname(new, f"only edit {step}", step)
            delta = compute_delta(doc, new)
            _got, report = session.apply(delta)
            modes.append(report.mode)
            doc = new
        assert set(modes) == {"scoped"}

    def test_session_survives_a_threshold_fallback(self):
        plan = _plan("fig7")
        session = IncrementalSession(plan)
        doc = _instance()
        session.transform(doc)
        big = doc.copy()
        for index in range(60):
            _edit_ename(big, f"bulk {index}", index)
            _edit_pname(big, f"bulk {index}", index)
        got, report = session.transform(big)
        assert report.mode == "fallback"
        assert to_xml(got) == to_xml(plan.run(big))
        after = big.copy()
        _edit_pname(after, "back to small edits")
        got, report = session.transform(after)
        assert to_xml(got) == to_xml(plan.run(after))

    def test_unsupported_shapes_degrade_to_stateless_full_runs(self):
        plan = _plan("fig9")  # aggregate mapping: no scoped support
        session = IncrementalSession(plan)
        doc = _instance()
        for _ in range(2):
            got, report = session.transform(doc)
            assert to_xml(got) == to_xml(plan.run(doc))
            if report.reason.startswith("unsupported mapping shape"):
                assert report.mode == "fallback"


class TestPlanMemo:
    CHAINS = {
        "seq": ("Depts", "Dept", "Proj"),
        "key": ("Depts", "Dept", "Proj", "pname", "value"),
        "other": ("Depts", "Dept", "regEmp", "ename", "value"),
    }

    def _memo(self) -> PlanMemo:
        memo = PlanMemo()
        memo.put("seq", [1, 2, 3], {self.CHAINS["seq"]})
        memo.put("table", {"k": 1}, {self.CHAINS["seq"], self.CHAINS["key"]})
        memo.put("atom", ["x"], {self.CHAINS["other"]})
        return memo

    def test_value_chains_invalidate_exactly(self):
        """A text mutation names a leaf: the node-set cache above it
        survives, the value caches reading that leaf die."""
        memo = self._memo()
        dropped = memo.invalidate({self.CHAINS["key"]}, set())
        assert dropped == 1
        assert memo.get("seq") is not None
        assert memo.get("table") is None
        assert memo.get("atom") is not None

    def test_structural_chains_invalidate_by_prefix(self):
        memo = self._memo()
        dropped = memo.invalidate(set(), {("Depts", "Dept", "Proj")})
        assert dropped == 2
        assert memo.get("seq") is None
        assert memo.get("table") is None
        assert memo.get("atom") is not None

    def test_structural_ancestor_kills_everything_below(self):
        memo = self._memo()
        assert memo.invalidate(set(), {("Depts",)}) == 3
        assert len(memo) == 0

    def test_unrelated_chains_touch_nothing(self):
        memo = self._memo()
        assert memo.invalidate(
            {("Depts", "Dept", "dname", "value")},
            {("Elsewhere", "entirely")},
        ) == 0
        assert len(memo) == 3

    def test_clear_empties_entries_and_pins(self):
        memo = self._memo()
        memo.pin(object())
        memo.clear()
        assert len(memo) == 0
