"""Tests for the structural instance diff."""

from __future__ import annotations

from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.xml.diff import diff, render_diff
from repro.xml.model import element


class TestBasics:
    def test_identical_instances(self):
        a = deptstore.source_instance()
        b = deptstore.source_instance()
        assert diff(a, b) == []
        assert render_diff([]) == "(instances are identical)"

    def test_attribute_change(self):
        a = element("t", element("e", n=1))
        b = element("t", element("e", n=2))
        (d,) = diff(a, b)
        assert d.kind == "attribute"
        assert d.location == "/t/e[1]/@n"
        assert (d.left, d.right) == (1, 2)

    def test_attribute_only_on_one_side(self):
        a = element("t", element("e", n=1))
        b = element("t", element("e"))
        (d,) = diff(a, b)
        assert (d.left, d.right) == (1, None)

    def test_text_change(self):
        a = element("t", element("e", text="x"))
        b = element("t", element("e", text="y"))
        (d,) = diff(a, b)
        assert d.kind == "text" and d.location == "/t/e[1]/text()"

    def test_missing_and_extra_children(self):
        a = element("t", element("e"), element("e"))
        b = element("t", element("e"))
        (d,) = diff(a, b)
        assert d.kind == "missing" and d.location == "/t/e[2]"
        (d2,) = diff(b, a)
        assert d2.kind == "extra"

    def test_tag_mismatch_at_root(self):
        (d,) = diff(element("a"), element("b"))
        assert d.kind == "tag"

    def test_positional_alignment_per_tag(self):
        a = element("t", element("x", n=1), element("y"), element("x", n=2))
        b = element("t", element("x", n=1), element("x", n=3))
        differences = diff(a, b)
        kinds = sorted((d.kind, d.location) for d in differences)
        assert ("attribute", "/t/x[2]/@n") in kinds
        assert ("missing", "/t/y[1]") in kinds

    def test_limit_respected(self):
        a = element("t", *[element("e", n=i) for i in range(20)])
        b = element("t", *[element("e", n=i + 100) for i in range(20)])
        assert len(diff(a, b, max_differences=5)) == 5


class TestMappingWorkflow:
    def test_diff_shows_what_the_context_arc_changes(self):
        """The developer workflow: compare fig4 with and without the arc."""
        instance = deptstore.source_instance()
        with_arc = execute(compile_clip(deptstore.mapping_fig4()), instance)
        without = execute(
            compile_clip(deptstore.mapping_fig4(context_arc=False)), instance
        )
        differences = diff(with_arc, without)
        assert differences  # the repeated employees show up
        text = render_diff(differences)
        assert "/target/department[1]/employee[2]" in text


class TestNamespaceBearingDocuments:
    """The parser strips namespace URIs (Clip schemas are prefix-free),
    so namespace-bearing inputs diff on *local names* — two documents
    differing only in prefix or declared URI compare identical, and a
    real structural change is still pinpointed.  Groundwork for
    incremental recomputation, which must not treat prefix churn as a
    change."""

    def test_prefix_and_uri_churn_is_invisible(self):
        from repro.xml.parser import parse_xml

        a = parse_xml(
            '<root xmlns:a="http://one.example/ns">'
            '<a:item a:kind="x">v</a:item></root>'
        )
        b = parse_xml(
            '<root xmlns:b="http://two.example/ns">'
            '<b:item b:kind="x">v</b:item></root>'
        )
        assert diff(a, b) == []

    def test_real_change_survives_namespace_noise(self):
        from repro.xml.parser import parse_xml

        a = parse_xml(
            '<root xmlns:n="urn:x"><n:item n:kind="x">v</n:item></root>'
        )
        b = parse_xml(
            '<root xmlns:n="urn:x"><n:item n:kind="y">v</n:item></root>'
        )
        (d,) = diff(a, b)
        assert d.kind == "attribute"
        assert d.location == "/root/item[1]/@kind"
        assert (d.left, d.right) == ("x", "y")

    def test_default_namespace_elements_align(self):
        from repro.xml.parser import parse_xml

        a = parse_xml('<r xmlns="urn:a"><c>1</c><c>2</c></r>')
        b = parse_xml('<r><c>1</c></r>')
        (d,) = diff(a, b)
        assert d.kind == "missing" and d.location == "/r/c[2]"


class TestMixedContentDocuments:
    """The model is element-centric (text XOR children); the parser
    resolves mixed content by keeping children and dropping the
    interleaved text.  The diff must honor exactly that resolution:
    interleaved text never produces phantom differences, and the
    child structure still diffs normally."""

    def test_interleaved_text_is_not_a_difference(self):
        from repro.xml.parser import parse_xml

        a = parse_xml("<p>hello <b>world</b> again</p>")
        b = parse_xml("<p><b>world</b></p>")
        assert diff(a, b) == []

    def test_child_changes_inside_mixed_content_are_found(self):
        from repro.xml.parser import parse_xml

        a = parse_xml("<p>intro <b>one</b> middle <b>two</b></p>")
        b = parse_xml("<p>intro <b>one</b> middle <b>TWO</b></p>")
        (d,) = diff(a, b)
        assert d.kind == "text"
        assert d.location == "/p/b[2]/text()"
        assert (d.left, d.right) == ("two", "TWO")

    def test_text_vs_children_is_structural(self):
        """A node that is pure text on one side and element-bearing on
        the other is a structural difference, reported at the child."""
        from repro.xml.parser import parse_xml

        a = parse_xml("<p>plain</p>")
        b = parse_xml("<p><b>bold</b></p>")
        differences = diff(a, b)
        assert differences
        kinds = {d.kind for d in differences}
        assert kinds <= {"text", "extra"}


class TestDiffResultTruncation:
    def test_truncated_flag_set_when_limit_drops_records(self):
        a = element("r", *[element("x", text=str(i)) for i in range(10)])
        b = element("r", *[element("x", text=str(i + 100)) for i in range(10)])
        clipped = diff(a, b, max_differences=5)
        assert len(clipped) == 5
        assert clipped.truncated is True

    def test_complete_diff_is_not_truncated(self):
        a = element("r", element("x", text="old"))
        b = element("r", element("x", text="new"))
        full = diff(a, b)
        assert len(full) == 1
        assert full.truncated is False

    def test_exactly_at_limit_is_not_truncated(self):
        a = element("r", *[element("x", text=str(i)) for i in range(5)])
        b = element("r", *[element("x", text=str(i + 100)) for i in range(5)])
        exact = diff(a, b, max_differences=5)
        assert len(exact) == 5
        assert exact.truncated is False


class TestComputeDelta:
    def _pair(self):
        left = deptstore.source_instance()
        right = deptstore.source_instance()
        dept = right.findall("dept")[0]
        pname = dept.findall("Proj")[0].find("pname")
        pname.clear_text()
        pname.set_text("renamed")
        emp = dept.findall("regEmp")[0]
        emp.parent.remove(emp)
        return left, right

    def test_apply_round_trips_byte_identically(self):
        from repro.xml.diff import apply_delta, compute_delta
        from repro.xml.serialize import to_xml

        left, right = self._pair()
        delta = compute_delta(left, right)
        rebuilt = apply_delta(left, delta)
        assert to_xml(rebuilt) == to_xml(right)
        # and the left instance is untouched
        assert to_xml(left) == to_xml(deptstore.source_instance())

    def test_identical_instances_give_the_empty_delta(self):
        from repro.xml.diff import compute_delta

        delta = compute_delta(
            deptstore.source_instance(), deptstore.source_instance()
        )
        assert delta.is_empty
        assert not delta.truncated

    def test_tag_paths_by_kind_partitions_tag_paths(self):
        from repro.xml.diff import compute_delta

        left, right = self._pair()
        delta = compute_delta(left, right)
        values, structure = delta.tag_paths_by_kind()
        assert values | structure == delta.tag_paths()
        assert values.isdisjoint(structure)
        assert ("dept", "Proj", "pname", "value") in values
        assert ("dept", "regEmp") in structure

    def test_truncated_delta_cannot_be_applied(self):
        import pytest

        from repro.errors import XmlError
        from repro.xml.diff import apply_delta, compute_delta

        left, right = self._pair()
        delta = compute_delta(left, right, max_records=1)
        assert delta.truncated
        with pytest.raises(XmlError, match="truncated"):
            apply_delta(left, delta)


class TestApplyDeltaInPlace:
    def test_mutates_the_tree_to_match_and_reports_touched_nodes(self):
        from repro.xml.diff import apply_delta_in_place, compute_delta
        from repro.xml.serialize import to_xml

        left = deptstore.source_instance()
        right = deptstore.source_instance()
        field = right.findall("dept")[1].findall("Proj")[0].find("pname")
        field.clear_text()
        field.set_text("edited in place")
        delta = compute_delta(left, right)
        touched = apply_delta_in_place(left, delta)
        assert to_xml(left) == to_xml(right)
        assert [node.tag for node in touched] == ["pname"]

    def test_preserves_node_identities_outside_the_edit(self):
        from repro.xml.diff import apply_delta_in_place, compute_delta

        left = deptstore.source_instance()
        right = deptstore.source_instance()
        field = right.findall("dept")[0].findall("Proj")[0].find("pname")
        field.clear_text()
        field.set_text("edited")
        untouched_before = left.findall("dept")[1]
        edited_before = left.findall("dept")[0].findall("Proj")[0]
        apply_delta_in_place(left, compute_delta(left, right))
        assert left.findall("dept")[1] is untouched_before
        # even the mutated element keeps its identity: only its text moved
        assert left.findall("dept")[0].findall("Proj")[0] is edited_before

    def test_structural_edit_reports_the_parent(self):
        from repro.xml.diff import apply_delta_in_place, compute_delta
        from repro.xml.serialize import to_xml

        left = deptstore.source_instance()
        right = deptstore.source_instance()
        emp = right.findall("dept")[0].findall("regEmp")[-1]
        emp.parent.remove(emp)
        delta = compute_delta(left, right)
        touched = apply_delta_in_place(left, delta)
        assert to_xml(left) == to_xml(right)
        assert [node.tag for node in touched] == ["dept"]

    def test_whole_document_replace_is_refused(self):
        import pytest

        from repro.errors import XmlError
        from repro.xml.diff import apply_delta_in_place, compute_delta

        left = element("a", element("x", text=1))
        right = element("b", element("y", text=2))
        delta = compute_delta(left, right)
        with pytest.raises(XmlError, match="whole-document replace"):
            apply_delta_in_place(left, delta)
