"""Tests for the structural instance diff."""

from __future__ import annotations

from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.xml.diff import diff, render_diff
from repro.xml.model import element


class TestBasics:
    def test_identical_instances(self):
        a = deptstore.source_instance()
        b = deptstore.source_instance()
        assert diff(a, b) == []
        assert render_diff([]) == "(instances are identical)"

    def test_attribute_change(self):
        a = element("t", element("e", n=1))
        b = element("t", element("e", n=2))
        (d,) = diff(a, b)
        assert d.kind == "attribute"
        assert d.location == "/t/e[1]/@n"
        assert (d.left, d.right) == (1, 2)

    def test_attribute_only_on_one_side(self):
        a = element("t", element("e", n=1))
        b = element("t", element("e"))
        (d,) = diff(a, b)
        assert (d.left, d.right) == (1, None)

    def test_text_change(self):
        a = element("t", element("e", text="x"))
        b = element("t", element("e", text="y"))
        (d,) = diff(a, b)
        assert d.kind == "text" and d.location == "/t/e[1]/text()"

    def test_missing_and_extra_children(self):
        a = element("t", element("e"), element("e"))
        b = element("t", element("e"))
        (d,) = diff(a, b)
        assert d.kind == "missing" and d.location == "/t/e[2]"
        (d2,) = diff(b, a)
        assert d2.kind == "extra"

    def test_tag_mismatch_at_root(self):
        (d,) = diff(element("a"), element("b"))
        assert d.kind == "tag"

    def test_positional_alignment_per_tag(self):
        a = element("t", element("x", n=1), element("y"), element("x", n=2))
        b = element("t", element("x", n=1), element("x", n=3))
        differences = diff(a, b)
        kinds = sorted((d.kind, d.location) for d in differences)
        assert ("attribute", "/t/x[2]/@n") in kinds
        assert ("missing", "/t/y[1]") in kinds

    def test_limit_respected(self):
        a = element("t", *[element("e", n=i) for i in range(20)])
        b = element("t", *[element("e", n=i + 100) for i in range(20)])
        assert len(diff(a, b, max_differences=5)) == 5


class TestMappingWorkflow:
    def test_diff_shows_what_the_context_arc_changes(self):
        """The developer workflow: compare fig4 with and without the arc."""
        instance = deptstore.source_instance()
        with_arc = execute(compile_clip(deptstore.mapping_fig4()), instance)
        without = execute(
            compile_clip(deptstore.mapping_fig4(context_arc=False)), instance
        )
        differences = diff(with_arc, without)
        assert differences  # the repeated employees show up
        text = render_diff(differences)
        assert "/target/department[1]/employee[2]" in text
