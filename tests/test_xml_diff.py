"""Tests for the structural instance diff."""

from __future__ import annotations

from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.xml.diff import diff, render_diff
from repro.xml.model import element


class TestBasics:
    def test_identical_instances(self):
        a = deptstore.source_instance()
        b = deptstore.source_instance()
        assert diff(a, b) == []
        assert render_diff([]) == "(instances are identical)"

    def test_attribute_change(self):
        a = element("t", element("e", n=1))
        b = element("t", element("e", n=2))
        (d,) = diff(a, b)
        assert d.kind == "attribute"
        assert d.location == "/t/e[1]/@n"
        assert (d.left, d.right) == (1, 2)

    def test_attribute_only_on_one_side(self):
        a = element("t", element("e", n=1))
        b = element("t", element("e"))
        (d,) = diff(a, b)
        assert (d.left, d.right) == (1, None)

    def test_text_change(self):
        a = element("t", element("e", text="x"))
        b = element("t", element("e", text="y"))
        (d,) = diff(a, b)
        assert d.kind == "text" and d.location == "/t/e[1]/text()"

    def test_missing_and_extra_children(self):
        a = element("t", element("e"), element("e"))
        b = element("t", element("e"))
        (d,) = diff(a, b)
        assert d.kind == "missing" and d.location == "/t/e[2]"
        (d2,) = diff(b, a)
        assert d2.kind == "extra"

    def test_tag_mismatch_at_root(self):
        (d,) = diff(element("a"), element("b"))
        assert d.kind == "tag"

    def test_positional_alignment_per_tag(self):
        a = element("t", element("x", n=1), element("y"), element("x", n=2))
        b = element("t", element("x", n=1), element("x", n=3))
        differences = diff(a, b)
        kinds = sorted((d.kind, d.location) for d in differences)
        assert ("attribute", "/t/x[2]/@n") in kinds
        assert ("missing", "/t/y[1]") in kinds

    def test_limit_respected(self):
        a = element("t", *[element("e", n=i) for i in range(20)])
        b = element("t", *[element("e", n=i + 100) for i in range(20)])
        assert len(diff(a, b, max_differences=5)) == 5


class TestMappingWorkflow:
    def test_diff_shows_what_the_context_arc_changes(self):
        """The developer workflow: compare fig4 with and without the arc."""
        instance = deptstore.source_instance()
        with_arc = execute(compile_clip(deptstore.mapping_fig4()), instance)
        without = execute(
            compile_clip(deptstore.mapping_fig4(context_arc=False)), instance
        )
        differences = diff(with_arc, without)
        assert differences  # the repeated employees show up
        text = render_diff(differences)
        assert "/target/department[1]/employee[2]" in text


class TestNamespaceBearingDocuments:
    """The parser strips namespace URIs (Clip schemas are prefix-free),
    so namespace-bearing inputs diff on *local names* — two documents
    differing only in prefix or declared URI compare identical, and a
    real structural change is still pinpointed.  Groundwork for
    incremental recomputation, which must not treat prefix churn as a
    change."""

    def test_prefix_and_uri_churn_is_invisible(self):
        from repro.xml.parser import parse_xml

        a = parse_xml(
            '<root xmlns:a="http://one.example/ns">'
            '<a:item a:kind="x">v</a:item></root>'
        )
        b = parse_xml(
            '<root xmlns:b="http://two.example/ns">'
            '<b:item b:kind="x">v</b:item></root>'
        )
        assert diff(a, b) == []

    def test_real_change_survives_namespace_noise(self):
        from repro.xml.parser import parse_xml

        a = parse_xml(
            '<root xmlns:n="urn:x"><n:item n:kind="x">v</n:item></root>'
        )
        b = parse_xml(
            '<root xmlns:n="urn:x"><n:item n:kind="y">v</n:item></root>'
        )
        (d,) = diff(a, b)
        assert d.kind == "attribute"
        assert d.location == "/root/item[1]/@kind"
        assert (d.left, d.right) == ("x", "y")

    def test_default_namespace_elements_align(self):
        from repro.xml.parser import parse_xml

        a = parse_xml('<r xmlns="urn:a"><c>1</c><c>2</c></r>')
        b = parse_xml('<r><c>1</c></r>')
        (d,) = diff(a, b)
        assert d.kind == "missing" and d.location == "/r/c[2]"


class TestMixedContentDocuments:
    """The model is element-centric (text XOR children); the parser
    resolves mixed content by keeping children and dropping the
    interleaved text.  The diff must honor exactly that resolution:
    interleaved text never produces phantom differences, and the
    child structure still diffs normally."""

    def test_interleaved_text_is_not_a_difference(self):
        from repro.xml.parser import parse_xml

        a = parse_xml("<p>hello <b>world</b> again</p>")
        b = parse_xml("<p><b>world</b></p>")
        assert diff(a, b) == []

    def test_child_changes_inside_mixed_content_are_found(self):
        from repro.xml.parser import parse_xml

        a = parse_xml("<p>intro <b>one</b> middle <b>two</b></p>")
        b = parse_xml("<p>intro <b>one</b> middle <b>TWO</b></p>")
        (d,) = diff(a, b)
        assert d.kind == "text"
        assert d.location == "/p/b[2]/text()"
        assert (d.left, d.right) == ("two", "TWO")

    def test_text_vs_children_is_structural(self):
        """A node that is pure text on one side and element-bearing on
        the other is a structural difference, reported at the child."""
        from repro.xml.parser import parse_xml

        a = parse_xml("<p>plain</p>")
        b = parse_xml("<p><b>bold</b></p>")
        differences = diff(a, b)
        assert differences
        kinds = {d.kind for d in differences}
        assert kinds <= {"text", "extra"}
