#!/usr/bin/env python3
"""Project analytics: joins, grouping, inversion and aggregates.

The workloads of the paper's Figures 6–9 as one analytics pipeline over
the department feed:

* a flat project–employee association joined on ``@pid`` (Figure 6);
* a project roster grouped by project name, with the employees that
  work on each project across departments (Figure 7);
* the inverted view — per project, the departments running it
  (Figure 8);
* per-department statistics with ``count`` and ``avg`` (Figure 9).

Each mapping is run at paper scale and then on a synthetic ~50×
workload, through both engines.

Run with:  python examples/project_analytics.py
"""

import time

from repro import Transformer
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance
from repro.xml import to_ascii


def show(title: str, clip_factory, instance, big_instance) -> None:
    print(f"\n=== {title}")
    transformer = Transformer(clip_factory())
    print(transformer.tgd)
    out = transformer(instance)
    print(to_ascii(out))
    started = time.perf_counter()
    big_out = transformer(big_instance)
    direct_ms = (time.perf_counter() - started) * 1000
    started = time.perf_counter()
    via_xquery = Transformer(clip_factory(), engine="xquery")(big_instance)
    xquery_ms = (time.perf_counter() - started) * 1000
    assert big_out == via_xquery
    print(
        f"[scaled: {big_instance.size()} source elements → "
        f"{big_out.size()} target elements; executor {direct_ms:.1f} ms, "
        f"generated XQuery {xquery_ms:.1f} ms — identical results]"
    )


def main() -> None:
    instance = deptstore.source_instance()
    big = make_deptstore_instance(
        DeptstoreSpec(departments=25, projects_per_dept=5, employees_per_dept=15,
                      project_name_pool=6)
    )
    show("Figure 6: project-emp join", deptstore.mapping_fig6, instance, big)
    show("Figure 7: group projects by name", deptstore.mapping_fig7, instance, big)
    show("Figure 8: invert the hierarchy", deptstore.mapping_fig8, instance, big)
    show("Figure 9: per-department aggregates", deptstore.mapping_fig9, instance, big)


if __name__ == "__main__":
    main()
