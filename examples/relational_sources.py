#!/usr/bin/env python3
"""Mapping relational data with Clip.

"Just like Clio, Clip also works with relational schemas, as long as
they are converted in a canonical way into XML Schemas" (Section I).
This example defines a small company database, converts schema and rows
canonically, draws a Clip mapping over the converted schema (using the
foreign key as the join condition), and publishes a nested XML report.

Run with:  python examples/relational_sources.py
"""

from repro import Transformer
from repro.core.mapping import ClipMapping
from repro.xml import to_ascii
from repro.xsd import (
    Column,
    ForeignKey,
    RelationalSchema,
    Table,
    INT,
    STRING,
    attr,
    elem,
    render_schema,
    rows_to_instance,
    schema,
    suggest_join,
    to_xml_schema,
)


def main() -> None:
    company = RelationalSchema(
        "companyDB",
        (
            Table(
                "department",
                (Column("did", INT), Column("dname", STRING), Column("city", STRING)),
                primary_key=("did",),
            ),
            Table(
                "employee",
                (
                    Column("eid", INT),
                    Column("ename", STRING),
                    Column("salary", INT),
                    Column("did", INT),
                ),
                primary_key=("eid",),
                foreign_keys=(ForeignKey("did", "department", "did"),),
            ),
        ),
    )

    source = to_xml_schema(company)
    print("CANONICAL XML SCHEMA OF companyDB")
    print(render_schema(source))

    target = schema(
        elem(
            "report",
            elem(
                "site",
                "[0..*]",
                attr("city", STRING),
                elem(
                    "dept",
                    "[0..*]",
                    attr("name", STRING),
                    elem("staff", "[0..*]", attr("name", STRING), attr("pay", INT)),
                ),
            ),
        )
    )

    clip = ClipMapping(source, target)
    # The canonical conversion keeps the foreign key as a keyref, so the
    # join condition can be suggested automatically (as in Figure 6):
    suggested = suggest_join(
        source, source.element("employee"), source.element("department")
    )
    print("\nsuggested join:", " = ".join(v.path_string() for v in suggested))

    site = clip.group("department", "site", var="d", by=["$d.@city"])
    dept = clip.build("department", "site/dept", var="d2", parent=site)
    clip.build(
        "employee",
        "site/dept/staff",
        var="e",
        condition="$e.@did = $d2.@did",
        parent=dept,
    )
    clip.value("department/@city", "site/@city")
    clip.value("department/@dname", "site/dept/@name")
    clip.value("employee/@ename", "site/dept/staff/@name")
    clip.value("employee/@salary", "site/dept/staff/@pay")

    transformer = Transformer(clip)
    print("\nNESTED TGD")
    print(transformer.tgd)

    rows = {
        "department": [
            {"did": 1, "dname": "ICT", "city": "Milano"},
            {"did": 2, "dname": "Marketing", "city": "Milano"},
            {"did": 3, "dname": "Sales", "city": "Roma"},
        ],
        "employee": [
            {"eid": 10, "ename": "Ann", "salary": 1200, "did": 1},
            {"eid": 11, "ename": "Bob", "salary": 1400, "did": 2},
            {"eid": 12, "ename": "Cid", "salary": 1100, "did": 3},
            {"eid": 13, "ename": "Dee", "salary": 1600, "did": 1},
        ],
    }
    instance = rows_to_instance(company, rows)
    print("\nCANONICAL INSTANCE (rows as XML)")
    print(to_ascii(instance))

    result = transformer(instance)
    print("\nREPORT (sites grouped by city, departments, staff)")
    print(to_ascii(result))


if __name__ == "__main__":
    main()
