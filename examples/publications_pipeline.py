#!/usr/bin/env python3
"""A two-stage integration pipeline over a publications catalog.

Real deployments chain mappings: a raw feed is first normalized into a
canonical schema, then published into consumer-facing views.  This
example runs both stages on a DBLP-style bibliography:

1. **normalize** — join papers to their venue records (a Figure 6-style
   join drawn over the keyref) and flatten into `publication` entries;
2. **publish** — group by author (a Figure 8-style inversion) with a
   per-author paper count (a Figure 9-style aggregate).

Run with:  python examples/publications_pipeline.py
"""

from repro.pipeline import Pipeline
from repro.scenarios import publications as pub
from repro.xml import to_ascii
from repro.xsd import render_schema


def main() -> None:
    print("FEED SCHEMA")
    print(render_schema(pub.feed_schema()))

    pipeline = Pipeline([pub.normalize_mapping(), pub.publish_mapping()])
    print("\nPIPELINE")
    print(pipeline.describe())

    feed = pub.feed_instance()
    print("\nINPUT FEED")
    print(to_ascii(feed))

    stages = pipeline.run(feed, validate_stages=True, keep_intermediates=True)
    print("\nSTAGE 1 — canonical catalog (papers joined to venues)")
    print(to_ascii(stages[0].instance))
    print("\nSTAGE 2 — per-author report (inversion + counts)")
    print(to_ascii(stages[1].instance))

    # The same pipeline through the generated XQuery:
    via_xquery = Pipeline(
        [pub.normalize_mapping(), pub.publish_mapping()], engine="xquery"
    )
    assert via_xquery(feed) == stages[1].instance
    print("\nXQuery-engine pipeline produced the identical report: OK")


if __name__ == "__main__":
    main()
