#!/usr/bin/env python3
"""The Section I motivating scenario: reorganizing department data.

A data engineer must convert the dept/Proj/regEmp feed into the
department/project/employee warehouse format, *preserving containment
and sibling relationships*.  The script replays the paper's argument:

1. Clio, given only the two value mappings, "encloses each node in a
   different department element" — structure is lost;
2. Clip's explicit CPT (Figure 5) produces the desired output;
3. omitting the context arc shows what the explicit lines control
   (Figure 4's repeated-employees variant).

Run with:  python examples/department_reorg.py
"""

from repro import Transformer, compile_clip, execute
from repro.core.mapping import ValueMapping
from repro.generation import generate_clio
from repro.scenarios import deptstore
from repro.xml import to_ascii


def main() -> None:
    source = deptstore.source_schema()
    target = deptstore.target_schema_departments()
    instance = deptstore.source_instance()

    print("SOURCE INSTANCE (Section I-A)")
    print(to_ascii(instance))

    value_mappings = [
        ValueMapping(
            [source.value("dept/Proj/pname/value")],
            target.value("department/project/@name"),
        ),
        ValueMapping(
            [source.value("dept/regEmp/ename/value")],
            target.value("department/employee/@name"),
        ),
    ]

    print("\n--- 1. What Clio generates from the value mappings alone")
    clio = generate_clio(source, target, value_mappings)
    print(clio.tgd)
    broken = execute(clio.tgd, instance)
    print(f"\n→ {len(broken.findall('department'))} departments, one per mapped value:")
    print(to_ascii(broken))

    print("\n--- 2. The Clip mapping of Figure 5 (explicit CPT)")
    clip = deptstore.mapping_fig5()
    transformer = Transformer(clip)
    print(transformer.tgd)
    desired = transformer(instance)
    assert desired == deptstore.expected_fig5()
    print("\n→ containment and siblings preserved:")
    print(to_ascii(desired))

    print("\n--- 3. Ablation: omit the context arc (Figure 4 variant)")
    no_arc = deptstore.mapping_fig4(context_arc=False)
    repeated = execute(compile_clip(no_arc), instance)
    print("→ employees repeated within all departments:")
    print(to_ascii(repeated))


if __name__ == "__main__":
    main()
