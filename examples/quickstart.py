#!/usr/bin/env python3
"""Quickstart: draw a Clip mapping, compile it, run it.

Reproduces Figure 4 of the paper — context propagation — end to end:
the source schema, the mapping "drawn" through the API, the nested tgd
(Section IV), the generated XQuery (Section VI), and the transformed
instance, printed in the paper's notation throughout.

Run with:  python examples/quickstart.py
"""

from repro import Transformer
from repro.core.mapping import ClipMapping
from repro.scenarios import deptstore
from repro.xml import to_ascii
from repro.xsd import render_schema


def main() -> None:
    source = deptstore.source_schema()
    target = deptstore.target_schema_departments()

    print("SOURCE SCHEMA (left of Figure 1)")
    print(render_schema(source))
    print("\nTARGET SCHEMA")
    print(render_schema(target))

    # Draw the Figure 4 mapping: a builder from dept to department, a
    # context arc to a second builder from regEmp to employee with a
    # filtering condition, and one value mapping.
    clip = ClipMapping(source, target)
    dept_node = clip.build("dept", "department", var="d")
    clip.build(
        "dept/regEmp",
        "department/employee",
        var="r",
        condition="$r.sal.value > 11000",
        parent=dept_node,
    )
    clip.value("dept/regEmp/ename/value", "department/employee/@name")

    transformer = Transformer(clip)
    print("\nVALIDITY:", transformer.report)

    print("\nNESTED TGD (Section IV notation)")
    print(transformer.tgd)

    print("\nGENERATED XQUERY (Section VI)")
    print(transformer.xquery_text)

    result = transformer(deptstore.source_instance())
    print("\nRESULT (paper's tree notation)")
    print(to_ascii(result))

    # The same tgd runs through the XQuery interpreter — same instance.
    via_xquery = Transformer(clip, engine="xquery")(deptstore.source_instance())
    assert via_xquery == result
    print("\nXQuery engine agrees with the direct executor: OK")


if __name__ == "__main__":
    main()
