#!/usr/bin/env python3
"""The mapping developer's toolchain around the core pipeline.

Beyond compiling and running, a mapping tool needs the workflows this
script walks through on the paper's running example:

1. **persist** a drawn mapping (save/load as a JSON document);
2. **focus** on a portion of a large mapping (the paper's
   filters/highlighting future work);
3. **explain** an execution — per-level iteration/filter/build counters
   that expose Cartesian blow-ups;
4. **lineage & impact analysis** — which target fields a source change
   touches (the paper's change-management motivation);
5. **diff** the outputs of two mapping revisions;
6. **schema matching** — bootstrap value mappings for two schemas the
   user has not connected yet.

Run with:  python examples/mapping_toolchain.py
"""

import tempfile
from pathlib import Path

from repro import Transformer, compile_clip, execute
from repro.core.views import focus
from repro.executor import explain
from repro.io import load, save
from repro.lineage import impact_of_source, render_lineage
from repro.matching import suggest_value_mappings
from repro.scenarios import deptstore
from repro.xml.diff import diff, render_diff


def main() -> None:
    clip = deptstore.mapping_fig7()
    instance = deptstore.source_instance()

    print("=== 1. persist: save and reload the mapping document")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fig7.clip.json"
        save(clip, str(path))
        reloaded = load(str(path))
        assert Transformer(reloaded)(instance) == Transformer(clip)(instance)
        print(f"saved → {path.name} ({path.stat().st_size} bytes), reload verified")

    print("\n=== 2. focus on the employee side only")
    print(focus(clip, target="project/employee").render())

    print("\n=== 3. explain the execution")
    report = explain(compile_clip(clip), instance)
    print(report.render())

    print("\n=== 4. impact analysis: what does a change to sal affect?")
    fig4 = deptstore.mapping_fig4()
    entries = impact_of_source(compile_clip(fig4), "source/dept/regEmp/sal")
    print(render_lineage(entries))

    print("\n=== 5. diff two mapping revisions (with vs without the arc)")
    with_arc = execute(compile_clip(deptstore.mapping_fig4()), instance)
    without = execute(
        compile_clip(deptstore.mapping_fig4(context_arc=False)), instance
    )
    differences = diff(with_arc, without, max_differences=6)
    print(render_diff(differences))
    print(f"({len(differences)} differences shown)")

    print("\n=== 6. schema matching: suggest the Figure 1 value mappings")
    matches = suggest_value_mappings(
        deptstore.source_schema(), deptstore.target_schema_departments()
    )
    for match in matches:
        print(f"  {match}")


if __name__ == "__main__":
    main()
