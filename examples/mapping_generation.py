#!/usr/bin/env python3
"""Semi-automatic mapping generation: the Section V walkthrough.

Replays Figure 10 end to end:

1. tableaux of the generic source/target schemas and their dependency
   graph;
2. Clio's pipeline on the B/D value mappings — two flat mappings that
   cannot nest;
3. Clip's extension — the more general skeleton A → F is activated and
   both mappings nest inside it;
4. the user-added A(B×D) product tableau — the Cartesian product with
   respect to the A values;
5. the generated nesting forest converted back into an explicit Clip
   diagram ("a CPT is a nested mapping").

Run with:  python examples/mapping_generation.py
"""

from repro import compile_clip, execute
from repro.generation import (
    clip_mapping_from_forest,
    compute_tableaux,
    dependency_graph,
    explain_generation,
    generate_clio,
    generate_clip,
    product_tableau,
)
from repro.scenarios import generic
from repro.xml import to_ascii
from repro.xsd import render_schema


def main() -> None:
    source, target = generic.source_schema(), generic.target_schema()
    print("GENERIC SOURCE SCHEMA (Figure 10)")
    print(render_schema(source))
    print("\nGENERIC TARGET SCHEMA")
    print(render_schema(target))

    print("\nTABLEAUX AND DEPENDENCY GRAPH")
    tableaux = compute_tableaux(source)
    print("source:", ", ".join(t.shorthand() for t in tableaux))
    print("target:", ", ".join(t.shorthand() for t in compute_tableaux(target)))
    for lower, upper in dependency_graph(tableaux):
        print(f"  {lower.shorthand()} → {upper.shorthand()}")

    vms = generic.value_mappings_bd(source, target)
    instance = generic.sample_instance()

    print("\n--- Clio: the two mappings cannot nest")
    clio = generate_clio(source, target, vms)
    print(clio.tgd)
    print(to_ascii(execute(clio.tgd, instance)))

    print("\n--- Clip's extension: A → F activated, both mappings nested")
    clip_result = generate_clip(source, target, vms)
    print(explain_generation(clip_result))
    print(clip_result.tgd)
    print(to_ascii(execute(clip_result.tgd, instance)))

    print("\n--- User-added A(B×D) product tableau")
    abd = product_tableau(source, [source.element("A/B"), source.element("A/D")])
    product_result = generate_clip(source, target, vms, extra_source_tableaux=[abd])
    print(product_result.tgd)
    print(to_ascii(execute(product_result.tgd, instance)))

    print("\n--- The forest as an explicit Clip diagram (CPT synthesis)")
    clip = clip_mapping_from_forest(source, target, vms, clip_result.forest)
    for node in clip.build_nodes():
        print(" ", node)
    synthesized = execute(compile_clip(clip, require_valid=False), instance)
    assert synthesized.equals_canonically(execute(clip_result.tgd, instance))
    print("synthesized CPT computes the same instance: OK")


if __name__ == "__main__":
    main()
