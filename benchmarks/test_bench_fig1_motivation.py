"""Figure 1 — the motivating example.

The paper's Figure 1 is the mapping a user *attempts* in Clio: value
mappings alone compile to a transformation that "encloses each node in
a different department element".  This benchmark regenerates both sides
of the contrast:

* the Clio generation from the two value mappings and its broken output
  (one department per project / per joined employee);
* the desired output (Section I) obtained with Clip's Figure 5 CPT.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core.compile import compile_clip
from repro.core.mapping import ValueMapping
from repro.executor import execute
from repro.generation import generate_clio
from repro.scenarios import deptstore


def _value_mappings(source, target):
    return [
        ValueMapping(
            [source.value("dept/Proj/pname/value")],
            target.value("department/project/@name"),
        ),
        ValueMapping(
            [source.value("dept/regEmp/ename/value")],
            target.value("department/employee/@name"),
        ),
    ]


def _clio_tgd():
    source = deptstore.source_schema()
    target = deptstore.target_schema_departments()
    return generate_clio(source, target, _value_mappings(source, target)).tgd


def test_fig1_clio_reproduces_the_problem(paper_instance):
    """One department per mapped value — the paper's printed failure."""
    out = execute(_clio_tgd(), paper_instance)
    departments = out.findall("department")
    assert len(departments) == 11  # 4 projects + 7 joined employees
    assert all(len(d.children) == 1 for d in departments)
    report(
        "Figure 1 (motivation): Clio vs Clip on the same value mappings",
        [
            (
                "Clio departments",
                "one per mapped value (11)",
                str(len(departments)),
            ),
            (
                "Clip departments (Figure 5)",
                "one per dept (2)",
                str(
                    len(
                        execute(
                            compile_clip(deptstore.mapping_fig1_desired()),
                            paper_instance,
                        ).findall("department")
                    )
                ),
            ),
        ],
    )


def test_fig1_clip_reaches_the_desired_output(paper_instance):
    out = execute(compile_clip(deptstore.mapping_fig1_desired()), paper_instance)
    assert out == deptstore.expected_fig5()


@pytest.mark.benchmark(group="fig1")
def test_bench_fig1_clio_generation(benchmark):
    """Time Clio's full generation pipeline on the Figure 1 input."""
    source = deptstore.source_schema()
    target = deptstore.target_schema_departments()
    vms = _value_mappings(source, target)
    result = benchmark(generate_clio, source, target, vms)
    assert len(result.tgd.roots) == 2


@pytest.mark.benchmark(group="fig1")
def test_bench_fig1_clio_execution(benchmark, large_workload):
    tgd = _clio_tgd()
    out = benchmark(execute, tgd, large_workload)
    assert out.findall("department")


@pytest.mark.benchmark(group="fig1")
def test_bench_fig1_clip_execution(benchmark, large_workload):
    tgd = compile_clip(deptstore.mapping_fig1_desired())
    out = benchmark(execute, tgd, large_workload)
    assert len(out.findall("department")) == 50
