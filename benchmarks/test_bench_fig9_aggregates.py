"""Figure 9 — aggregate functions.

Regenerates the paper's aggregate table (counts and average salary per
department, with the paper's exact numbers) and benchmarks the
aggregate evaluation path in both engines.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.xquery import emit_xquery, run_query


def test_fig9_reproduces_paper_numbers(paper_instance):
    out = execute(compile_clip(deptstore.mapping_fig9()), paper_instance)
    assert out == deptstore.expected_fig9()
    ict, marketing = out.findall("department")
    report(
        "Figure 9: aggregates per department",
        [
            ("ICT numProj / numEmps", "2 / 4", f"{ict.attribute('numProj')} / {ict.attribute('numEmps')}"),
            ("ICT avg-sal", "10875", str(ict.attribute("avg-sal"))),
            ("Marketing avg-sal", "20000", str(marketing.attribute("avg-sal"))),
        ],
    )


def test_fig9_aggregation_context_fixed_by_builder(paper_instance):
    """'not all the projects are counted, but only those within a given
    department' — the builder fixes the aggregation context."""
    out = execute(compile_clip(deptstore.mapping_fig9()), paper_instance)
    assert [d.attribute("numProj") for d in out.findall("department")] == [2, 2]


@pytest.mark.benchmark(group="fig9")
def test_bench_fig9_executor(benchmark, large_workload):
    tgd = compile_clip(deptstore.mapping_fig9())
    out = benchmark(execute, tgd, large_workload)
    assert all(d.attribute("numEmps") == 40 for d in out.findall("department"))


@pytest.mark.benchmark(group="fig9")
def test_bench_fig9_xquery(benchmark, large_workload):
    query = emit_xquery(compile_clip(deptstore.mapping_fig9()))
    out = benchmark(run_query, query, large_workload)
    assert len(out.findall("department")) == 50


@pytest.mark.benchmark(group="fig9")
def test_bench_fig9_compile(benchmark):
    tgd = benchmark(compile_clip, deptstore.mapping_fig9())
    assert tgd.functions == ("count", "avg")
