"""Figure 7 — grouping with a per-group join.

Regenerates the paper's grouped output (one project per distinct name,
employees joined within the member's department) and benchmarks both
grouping implementations — the design-choice ablation of DESIGN.md:

* the executor's hash-based grouping (one pass over the items);
* the emitted XQuery 1.0 template (distinct-values + refilter, which is
  O(groups × items) because XQuery 1.0 has no group-by clause).
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance
from repro.xquery import emit_xquery, run_query


def test_fig7_reproduces_paper_output(paper_instance):
    out = execute(compile_clip(deptstore.mapping_fig7()), paper_instance)
    assert out == deptstore.expected_fig7()
    report(
        "Figure 7: grouping by project name",
        [
            ("projects", "3 distinct names", str(len(out.findall("project")))),
            (
                "Appliances employees",
                "John, Andrew, Mark (cross-dept)",
                str(len(out.findall("project")[0].findall("employee"))),
            ),
        ],
    )


@pytest.fixture(scope="module")
def grouping_workload():
    """Many homonymous projects: heavy grouping load."""
    return make_deptstore_instance(
        DeptstoreSpec(
            departments=20,
            projects_per_dept=6,
            employees_per_dept=15,
            project_name_pool=5,
        )
    )


@pytest.mark.benchmark(group="fig7")
def test_bench_fig7_executor_hash_grouping(benchmark, grouping_workload):
    tgd = compile_clip(deptstore.mapping_fig7())
    out = benchmark(execute, tgd, grouping_workload)
    assert len(out.findall("project")) == 5


@pytest.mark.benchmark(group="fig7")
def test_bench_fig7_xquery_template_grouping(benchmark, grouping_workload):
    """The XQuery 1.0 template re-filters the context per distinct value."""
    query = emit_xquery(compile_clip(deptstore.mapping_fig7()))
    out = benchmark(run_query, query, grouping_workload)
    assert len(out.findall("project")) == 5


def test_fig7_both_grouping_implementations_agree(grouping_workload):
    tgd = compile_clip(deptstore.mapping_fig7())
    assert execute(tgd, grouping_workload) == run_query(
        emit_xquery(tgd), grouping_workload
    )


@pytest.mark.benchmark(group="fig7")
def test_bench_fig7_compile_with_group_node(benchmark):
    tgd = benchmark(compile_clip, deptstore.mapping_fig7())
    assert tgd.functions == ("group-by",)
