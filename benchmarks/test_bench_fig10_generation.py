"""Figure 10 — mapping generation on the generic schema.

Regenerates the Section V-B walkthrough:

* the tableaux and dependency graph of the generic schema;
* Clio's two flat mappings AB → FG and AD → FG (which cannot nest);
* Clip's extension activating A → F and nesting both inside it;
* the user-added A(B×D) product tableau and the nested Cartesian
  product with respect to the A values.

Benchmarks time the generation pipeline itself, with and without the
extension, plus the chase ablation.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.executor import execute
from repro.generation import (
    compute_tableaux,
    dependency_graph,
    generate_clio,
    generate_clip,
    product_tableau,
)
from repro.scenarios import generic


@pytest.fixture(scope="module")
def schemas():
    return generic.source_schema(), generic.target_schema()


@pytest.fixture(scope="module")
def vms(schemas):
    return generic.value_mappings_bd(*schemas)


def test_fig10_tableaux_and_dependency_graph(schemas):
    source, target = schemas
    src_names = [t.shorthand() for t in compute_tableaux(source)]
    tgt_names = [t.shorthand() for t in compute_tableaux(target)]
    assert src_names == ["{A}", "{A-B}", "{A-B-C}", "{A-D}", "{A-D-E}"]
    assert tgt_names == ["{F}", "{F-G}"]
    edges = dependency_graph(compute_tableaux(source))
    assert len(edges) == 4  # A→AB, A→AD, AB→ABC, AD→ADE


def test_fig10_clio_cannot_nest(schemas, vms):
    source, target = schemas
    result = generate_clio(source, target, vms)
    assert sorted(a.skeleton.shorthand() for a in result.emitted) == [
        "{A-B} -> {F-G}",
        "{A-D} -> {F-G}",
    ]
    assert len(result.forest) == 2  # two flat roots


def test_fig10_clip_extension_nests_under_a_to_f(schemas, vms):
    source, target = schemas
    result = generate_clip(source, target, vms)
    assert result.forest[0].active.skeleton.shorthand() == "{A} -> {F}"
    assert len(result.forest[0].children) == 2
    out = execute(result.tgd, generic.sample_instance())
    clio_out = execute(generate_clio(source, target, vms).tgd, generic.sample_instance())
    report(
        "Figure 10: Clio vs Clip generation",
        [
            ("Clio F elements", "one per mapped value (6)", str(len(clio_out.findall("F")))),
            ("Clip F elements", "one per A (2)", str(len(out.findall("F")))),
        ],
    )


def test_fig10_abd_product_case(schemas, vms):
    source, target = schemas
    abd = product_tableau(source, [source.element("A/B"), source.element("A/D")])
    result = generate_clip(source, target, vms, extra_source_tableaux=[abd])
    (root,) = result.forest
    (child,) = root.children
    assert {e.name for e in child.active.skeleton.source.generators} == {"A", "B", "D"}


@pytest.mark.benchmark(group="fig10")
def test_bench_fig10_clio_generation(benchmark, schemas, vms):
    source, target = schemas
    result = benchmark(generate_clio, source, target, vms)
    assert len(result.emitted) == 2


@pytest.mark.benchmark(group="fig10")
def test_bench_fig10_clip_generation(benchmark, schemas, vms):
    source, target = schemas
    result = benchmark(generate_clip, source, target, vms)
    assert len(result.forest) == 1


@pytest.mark.benchmark(group="fig10")
def test_bench_fig10_tableaux_with_chase(benchmark):
    from repro.scenarios import deptstore

    source = deptstore.source_schema()
    tableaux = benchmark(compute_tableaux, source)
    assert len(tableaux) == 3


@pytest.mark.benchmark(group="fig10")
def test_bench_fig10_generated_mapping_execution(benchmark, schemas, vms):
    from repro.scenarios.workload import GenericSpec, make_generic_instance

    source, target = schemas
    tgd = generate_clip(source, target, vms).tgd
    instance = make_generic_instance(GenericSpec(a_count=200, b_per_a=5, d_per_a=5))
    out = benchmark(execute, tgd, instance)
    assert len(out.findall("F")) == 200
