"""Figure 4 — context propagation.

Regenerates both printed outputs: employees nested per department (with
the context arc) and employees repeated in all departments (without),
and benchmarks the two variants — the with/without-arc ablation from
DESIGN.md.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.xquery import emit_xquery, run_query


def test_fig4_reproduces_both_paper_outputs(paper_instance):
    with_arc = execute(compile_clip(deptstore.mapping_fig4()), paper_instance)
    without = execute(
        compile_clip(deptstore.mapping_fig4(context_arc=False)), paper_instance
    )
    assert with_arc == deptstore.expected_fig4()
    assert without == deptstore.expected_fig4_no_arc()
    report(
        "Figure 4: context arc controls containment",
        [
            ("with arc: employees total", "3 (1 + 2)", str(sum(len(d.findall('employee')) for d in with_arc))),
            ("without arc: employees total", "6 (3 × 2 departments)", str(sum(len(d.findall('employee')) for d in without))),
        ],
    )


@pytest.mark.benchmark(group="fig4")
def test_bench_fig4_with_context_arc(benchmark, large_workload):
    tgd = compile_clip(deptstore.mapping_fig4())
    out = benchmark(execute, tgd, large_workload)
    assert len(out.findall("department")) == 50


@pytest.mark.benchmark(group="fig4")
def test_bench_fig4_without_context_arc(benchmark, small_workload):
    """Quadratic repetition: measurably heavier than the nested variant."""
    tgd = compile_clip(deptstore.mapping_fig4(context_arc=False))
    out = benchmark(execute, tgd, small_workload)
    counts = {len(d.findall("employee")) for d in out.findall("department")}
    assert len(counts) == 1  # every department holds all employees


@pytest.mark.benchmark(group="fig4")
def test_bench_fig4_xquery(benchmark, small_workload):
    query = emit_xquery(compile_clip(deptstore.mapping_fig4()))
    out = benchmark(run_query, query, small_workload)
    assert out.findall("department")
