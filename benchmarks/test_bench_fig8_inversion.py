"""Figure 8 — inverting the nesting hierarchy.

Regenerates the paper's inverted output (departments nested under
grouped projects) and benchmarks the inversion, whose membership
condition makes it the heaviest construct in the language.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance
from repro.xquery import emit_xquery, run_query


def test_fig8_reproduces_paper_output(paper_instance):
    out = execute(compile_clip(deptstore.mapping_fig8()), paper_instance)
    assert out == deptstore.expected_fig8()
    report(
        "Figure 8: hierarchy inversion",
        [
            ("projects", "3", str(len(out.findall("project")))),
            (
                "Appliances departments",
                "ICT, Marketing",
                ", ".join(
                    d.attribute("name")
                    for d in out.findall("project")[0].findall("department")
                ),
            ),
        ],
    )


@pytest.fixture(scope="module")
def inversion_workload():
    return make_deptstore_instance(
        DeptstoreSpec(
            departments=25, projects_per_dept=5, employees_per_dept=5,
            project_name_pool=8,
        )
    )


@pytest.mark.benchmark(group="fig8")
def test_bench_fig8_executor(benchmark, inversion_workload):
    tgd = compile_clip(deptstore.mapping_fig8())
    out = benchmark(execute, tgd, inversion_workload)
    assert len(out.findall("project")) == 8


@pytest.mark.benchmark(group="fig8")
def test_bench_fig8_xquery(benchmark, inversion_workload):
    query = emit_xquery(compile_clip(deptstore.mapping_fig8()))
    out = benchmark(run_query, query, inversion_workload)
    assert len(out.findall("project")) == 8


def test_fig8_engines_agree(inversion_workload):
    tgd = compile_clip(deptstore.mapping_fig8())
    assert execute(tgd, inversion_workload) == run_query(
        emit_xquery(tgd), inversion_workload
    )
