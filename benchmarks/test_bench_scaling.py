"""Scaling sweep: transformation cost vs. instance size.

Not a paper artifact (the paper reports no performance numbers), but
the series a systems reader expects: each engine's execution time for
the Figure 5 CPT mapping across a sweep of source sizes, plus the
grouping mapping of Figure 7 whose XQuery 1.0 template is super-linear
in the group count.  The correctness assertions double as a guard that
both engines stay in agreement at every scale.

The ``scaling-join`` group sweeps the Figure 6 join mapping over
join-heavy geometries (few departments, many projects × employees per
department) in both evaluation modes — the join-aware compiled plan of
:mod:`repro.executor.planner` versus the naive nested-loop reference
path — so the hash-join speedup is measured, gated, and kept honest by
a byte-identity assertion at every size.
"""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.executor import execute, prepare
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance
from repro.xquery import emit_xquery, run_query

_SIZES = {
    "S": DeptstoreSpec(departments=5, projects_per_dept=3, employees_per_dept=8),
    "M": DeptstoreSpec(departments=15, projects_per_dept=5, employees_per_dept=15),
    "L": DeptstoreSpec(departments=40, projects_per_dept=6, employees_per_dept=25),
    "XL": DeptstoreSpec(departments=80, projects_per_dept=8, employees_per_dept=40),
}

#: Join-heavy geometries for the Figure 6 sweep: the per-department
#: ``Proj × regEmp`` cross product dominates, so the hash join's
#: advantage over the naive nested loop grows with size.
_JOIN_SIZES = {
    "S": DeptstoreSpec(departments=4, projects_per_dept=8, employees_per_dept=40),
    "M": DeptstoreSpec(departments=8, projects_per_dept=16, employees_per_dept=80),
    "L": DeptstoreSpec(departments=16, projects_per_dept=32, employees_per_dept=160),
    "XL": DeptstoreSpec(departments=24, projects_per_dept=48, employees_per_dept=320),
}


@pytest.fixture(scope="module")
def instances():
    return {name: make_deptstore_instance(spec) for name, spec in _SIZES.items()}


@pytest.mark.parametrize("size", list(_SIZES))
@pytest.mark.benchmark(group="scaling-executor")
def test_bench_scaling_executor_fig5(benchmark, instances, size):
    tgd = compile_clip(deptstore.mapping_fig5())
    out = benchmark(execute, tgd, instances[size])
    assert len(out.findall("department")) == _SIZES[size].departments


@pytest.mark.parametrize("size", list(_SIZES))
@pytest.mark.benchmark(group="scaling-xquery")
def test_bench_scaling_xquery_fig5(benchmark, instances, size):
    query = emit_xquery(compile_clip(deptstore.mapping_fig5()))
    out = benchmark(run_query, query, instances[size])
    assert len(out.findall("department")) == _SIZES[size].departments


@pytest.mark.parametrize("size", list(_SIZES))
@pytest.mark.benchmark(group="scaling-grouping")
def test_bench_scaling_grouping_fig7(benchmark, instances, size):
    tgd = compile_clip(deptstore.mapping_fig7())
    out = benchmark(execute, tgd, instances[size])
    assert out.findall("project")


@pytest.fixture(scope="module")
def join_instances():
    return {
        name: make_deptstore_instance(spec)
        for name, spec in _JOIN_SIZES.items()
    }


@pytest.mark.parametrize("mode", ["optimized", "naive"])
@pytest.mark.parametrize("size", list(_JOIN_SIZES))
@pytest.mark.benchmark(group="scaling-join")
def test_bench_scaling_join_fig6(benchmark, join_instances, size, mode):
    plan = prepare(
        compile_clip(deptstore.mapping_fig6()),
        optimize=(mode == "optimized"),
    )
    # Fixed rounds: the naive XL arm runs for seconds per round, and
    # the point is the optimized/naive ratio, not the absolute mean.
    out = benchmark.pedantic(
        plan.run, args=(join_instances[size],), rounds=3, iterations=1
    )
    assert out.size() > _JOIN_SIZES[size].departments


def test_scaling_engines_agree_at_every_size(instances):
    for size, instance in instances.items():
        for fig in ("fig5", "fig7", "fig9"):
            if fig == "fig7" and size == "XL":
                # Figure 7's XQuery 1.0 grouping template is
                # super-linear in the group count (the point of the
                # scaling-grouping sweep) — XL takes tens of seconds,
                # so the cross-engine check caps it at L.
                continue
            tgd = compile_clip(deptstore.scenario(fig).make_mapping())
            assert execute(tgd, instance) == run_query(
                emit_xquery(tgd), instance
            ), (size, fig)


def test_join_sweep_modes_agree_at_every_size(join_instances):
    """Optimized and naive evaluation are byte-identical on every join
    geometry; the XQuery engine corroborates at the sizes it can
    afford."""
    from repro.xml.serialize import to_xml

    tgd = compile_clip(deptstore.mapping_fig6())
    optimized = prepare(tgd, optimize=True)
    naive = prepare(tgd, optimize=False)
    query = emit_xquery(tgd)
    for size, instance in join_instances.items():
        fast = optimized.run(instance)
        assert to_xml(fast) == to_xml(naive.run(instance)), size
        if size in ("S", "M"):
            assert fast == run_query(query, instance), size
