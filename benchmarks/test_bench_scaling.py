"""Scaling sweep: transformation cost vs. instance size.

Not a paper artifact (the paper reports no performance numbers), but
the series a systems reader expects: each engine's execution time for
the Figure 5 CPT mapping across a sweep of source sizes, plus the
grouping mapping of Figure 7 whose XQuery 1.0 template is super-linear
in the group count.  The correctness assertions double as a guard that
both engines stay in agreement at every scale.
"""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance
from repro.xquery import emit_xquery, run_query

_SIZES = {
    "S": DeptstoreSpec(departments=5, projects_per_dept=3, employees_per_dept=8),
    "M": DeptstoreSpec(departments=15, projects_per_dept=5, employees_per_dept=15),
    "L": DeptstoreSpec(departments=40, projects_per_dept=6, employees_per_dept=25),
}


@pytest.fixture(scope="module")
def instances():
    return {name: make_deptstore_instance(spec) for name, spec in _SIZES.items()}


@pytest.mark.parametrize("size", list(_SIZES))
@pytest.mark.benchmark(group="scaling-executor")
def test_bench_scaling_executor_fig5(benchmark, instances, size):
    tgd = compile_clip(deptstore.mapping_fig5())
    out = benchmark(execute, tgd, instances[size])
    assert len(out.findall("department")) == _SIZES[size].departments


@pytest.mark.parametrize("size", list(_SIZES))
@pytest.mark.benchmark(group="scaling-xquery")
def test_bench_scaling_xquery_fig5(benchmark, instances, size):
    query = emit_xquery(compile_clip(deptstore.mapping_fig5()))
    out = benchmark(run_query, query, instances[size])
    assert len(out.findall("department")) == _SIZES[size].departments


@pytest.mark.parametrize("size", list(_SIZES))
@pytest.mark.benchmark(group="scaling-grouping")
def test_bench_scaling_grouping_fig7(benchmark, instances, size):
    tgd = compile_clip(deptstore.mapping_fig7())
    out = benchmark(execute, tgd, instances[size])
    assert out.findall("project")


def test_scaling_engines_agree_at_every_size(instances):
    for size, instance in instances.items():
        for fig in ("fig5", "fig7", "fig9"):
            tgd = compile_clip(deptstore.scenario(fig).make_mapping())
            assert execute(tgd, instance) == run_query(
                emit_xquery(tgd), instance
            ), (size, fig)
