"""Incremental-recomputation benchmarks: delta-scoped vs. full runs.

The ISSUE-9 performance contract: for small deltas (a single-field
edit, well under 5% of source nodes) the incremental session must beat
a full recompute by at least 5× at the Figure 7 L geometry.  The
benchmarked unit is one *edit cycle* — a ring of documents that each
differ from the previous one by one field edit, ending back at the
base — so the stateful arms replay the same chain every round:

* ``full``       — ``plan.run`` per document (the baseline cost);
* ``transform``  — :class:`IncrementalSession.transform` per document,
  which re-derives the delta with :func:`compute_delta` first (the
  two-trees contract);
* ``apply``      — :meth:`IncrementalSession.apply` per precomputed
  delta (the edit-script contract, matching the stateless
  :func:`transform_delta` signature where the delta is an input);
* ``stateless``  — :func:`transform_delta` per step, carrying the
  previous source and target explicitly instead of session state.

``incremental-fallback`` measures the policy escape hatch: a delta
over the ratio threshold falls back to a full recompute, so its cost
must track ``full``, not explode.  The committed ``BENCH_incremental``
baseline is regression-gated by ``compare_bench.py`` in CI, and
:func:`test_incremental_speedup_floor` enforces the 5× ratio in-test
with best-of-N timing.  Byte-identity against a fresh full run is
asserted during warm-up at every geometry: an unsound cache is a bug,
not a win.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.core.compile import compile_clip
from repro.executor import prepare
from repro.runtime.incremental import IncrementalSession, transform_delta
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance
from repro.xml.diff import compute_delta
from repro.xml.serialize import to_xml

#: Grouping-heavy Figure 7 and child-level Figure 5 geometries.  The
#: name pool scales with the project count so grouping keys stay
#: mostly distinct (real project names are), keeping the per-group
#: recompute unit small relative to the document.
_GEOMETRIES = {
    "fig7": {
        "S": DeptstoreSpec(departments=4, projects_per_dept=6,
                           employees_per_dept=8, project_name_pool=8),
        "M": DeptstoreSpec(departments=8, projects_per_dept=10,
                           employees_per_dept=14, project_name_pool=40),
        "L": DeptstoreSpec(departments=12, projects_per_dept=16,
                           employees_per_dept=22, project_name_pool=96),
        "XL": DeptstoreSpec(departments=18, projects_per_dept=22,
                            employees_per_dept=30, project_name_pool=160),
    },
    "fig5": {
        "L": DeptstoreSpec(departments=12, projects_per_dept=16,
                           employees_per_dept=22),
        "XL": DeptstoreSpec(departments=18, projects_per_dept=22,
                            employees_per_dept=30),
    },
}

_MAPPINGS = {
    "fig5": deptstore.mapping_fig5,
    "fig7": deptstore.mapping_fig7,
}

#: Documents per edit cycle (one benchmark round replays them all).
_CYCLE = 12

#: Best-of-N timing for the in-test speedup floor.
_TIMING_ROUNDS = 5

#: The ISSUE-9 acceptance floor: session ≥ 5× full recompute for
#: small deltas at fig7 L.
_SPEEDUP_FLOOR = 5.0


def _edit_cycle(fig: str, base):
    """A ring of documents: each differs from its predecessor by one
    field edit, and the last entry is the base again so stateful arms
    can replay the ring indefinitely."""
    docs = []
    for index in range(_CYCLE):
        doc = base.copy()
        if fig == "fig7":
            projects = [
                proj
                for dept in doc.findall("dept")
                for proj in dept.findall("Proj")
            ]
            target = projects[(7 * index) % len(projects)]
            field = target.find("pname")
            field.clear_text()
            field.set_text(f"edited-{index}")
        else:
            employees = [
                emp
                for dept in doc.findall("dept")
                for emp in dept.findall("regEmp")
            ]
            target = employees[(11 * index) % len(employees)]
            field = target.find("ename")
            field.clear_text()
            field.set_text(f"Edited {index}")
        docs.append(doc)
    docs.append(base.copy())
    return docs


def _ring_deltas(base, docs):
    out = []
    prev = base
    for doc in docs:
        out.append(compute_delta(prev, doc))
        prev = doc
    return out


@pytest.fixture(scope="module")
def workloads():
    loads = {}
    for fig, sizes in _GEOMETRIES.items():
        plan = prepare(compile_clip(_MAPPINGS[fig]()), optimize=True)
        for size, spec in sizes.items():
            base = make_deptstore_instance(spec)
            docs = _edit_cycle(fig, base)
            loads[(fig, size)] = (plan, base, docs, _ring_deltas(base, docs))
    # The rings keep hundreds of thousands of long-lived nodes alive;
    # without freezing them out of the young generations, periodic
    # full collections land inside individual rounds and make the
    # L-size timings bimodal (observed 100ms+ swings on otherwise
    # ~15ms rounds, in every arm including the full-recompute one).
    gc.collect()
    gc.freeze()
    yield loads
    gc.unfreeze()


def _warm_session(plan, base, docs):
    """A session advanced through one full ring, byte-checked against
    fresh full runs along the way (the correctness half of the bench)."""
    session = IncrementalSession(plan)
    session.transform(base)
    for doc in docs:
        target, _ = session.transform(doc)
        assert to_xml(target) == to_xml(plan.run(doc))
    return session


@pytest.mark.parametrize("size", ["S", "M", "L", "XL"])
@pytest.mark.benchmark(group="incremental-fig7")
def test_bench_incremental_full_fig7(benchmark, workloads, size):
    plan, _base, docs, _deltas = workloads[("fig7", size)]

    def cycle():
        for doc in docs:
            plan.run(doc)

    benchmark.pedantic(cycle, rounds=3, iterations=1)


@pytest.mark.parametrize("size", ["S", "M", "L", "XL"])
@pytest.mark.benchmark(group="incremental-fig7")
def test_bench_incremental_transform_fig7(benchmark, workloads, size):
    plan, base, docs, _deltas = workloads[("fig7", size)]
    session = _warm_session(plan, base, docs)

    def cycle():
        for doc in docs:
            session.transform(doc)

    benchmark.pedantic(cycle, rounds=3, iterations=1)


@pytest.mark.parametrize("size", ["S", "M", "L", "XL"])
@pytest.mark.benchmark(group="incremental-fig7")
def test_bench_incremental_apply_fig7(benchmark, workloads, size):
    plan, base, docs, deltas = workloads[("fig7", size)]
    session = _warm_session(plan, base, docs)

    def cycle():
        for delta in deltas:
            session.apply(delta)

    benchmark.pedantic(cycle, rounds=3, iterations=1)


@pytest.mark.parametrize("size", ["L", "XL"])
@pytest.mark.parametrize("arm", ["full", "apply"])
@pytest.mark.benchmark(group="incremental-fig5")
def test_bench_incremental_fig5(benchmark, workloads, size, arm):
    plan, base, docs, deltas = workloads[("fig5", size)]
    if arm == "full":

        def cycle():
            for doc in docs:
                plan.run(doc)

    else:
        session = _warm_session(plan, base, docs)

        def cycle():
            for delta in deltas:
                session.apply(delta)

    benchmark.pedantic(cycle, rounds=3, iterations=1)


@pytest.mark.benchmark(group="incremental-stateless")
def test_bench_incremental_stateless_fig7_l(benchmark, workloads):
    """The stateless contract at fig7 L: previous source, previous
    target and the delta are all inputs; no session state is carried."""
    plan, base, docs, deltas = workloads[("fig7", "L")]
    chain = []
    prev = base
    for doc, delta in zip(docs, deltas):
        chain.append((prev, plan.run(prev), delta))
        prev = doc

    def cycle():
        for old_source, old_target, delta in chain:
            transform_delta(plan, old_source, old_target, delta)

    benchmark.pedantic(cycle, rounds=3, iterations=1)


@pytest.mark.benchmark(group="incremental-fallback")
def test_bench_incremental_fallback_large_delta(benchmark, workloads):
    """A delta over the ratio threshold must degrade to full-recompute
    cost, not worse: the session detects the oversized edit up front
    and re-runs the plan once over its maintained tree."""
    plan, base, _docs, _deltas = workloads[("fig7", "L")]
    edited = base.copy()
    for dept in edited.findall("dept"):
        for proj in dept.findall("Proj"):
            field = proj.find("pname")
            field.clear_text()
            field.set_text("renamed")
        for emp in dept.findall("regEmp"):
            field = emp.find("ename")
            field.clear_text()
            field.set_text("renamed")
    ring = [edited, base.copy()]
    session = IncrementalSession(plan)
    session.transform(base)
    for doc in ring:
        target, report = session.transform(doc)
        assert report.mode == "fallback"
        assert to_xml(target) == to_xml(plan.run(doc))

    def cycle():
        for doc in ring:
            session.transform(doc)

    benchmark.pedantic(cycle, rounds=3, iterations=1)


def _best_cycle(run_cycle, rounds: int = _TIMING_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        run_cycle()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("fig", ["fig7", "fig5"])
def test_incremental_speedup_floor(workloads, fig):
    """The acceptance gate proper: at the L geometry, best-of-N
    delta-driven session time beats best-of-N full-recompute time by
    at least the 5× floor.  The warm-up ring byte-checks every step
    against a fresh full run, and every delta in the ring is verified
    small (well under 5% of source nodes)."""
    plan, base, docs, deltas = workloads[(fig, "L")]
    size = base.size()
    for delta in deltas:
        assert delta.ratio(size) <= 0.05, "edit cycle delta is not small"
    session = _warm_session(plan, base, docs)

    def full_cycle():
        for doc in docs:
            plan.run(doc)

    def apply_cycle():
        for delta in deltas:
            session.apply(delta)

    full_best = _best_cycle(full_cycle)
    apply_best = _best_cycle(apply_cycle)
    speedup = full_best / apply_best
    assert speedup >= _SPEEDUP_FLOOR, (
        f"{fig} L: incremental speedup {speedup:.2f}× below the "
        f"{_SPEEDUP_FLOOR}× floor (full {full_best * 1000:.1f} ms, "
        f"apply {apply_best * 1000:.1f} ms per cycle)"
    )
