"""Figure 5 — the context propagation tree.

"The first example of what cannot be obtained by state-of-the-art
tools": one builder's context propagated twice.  Regenerates the
Section I desired output and benchmarks the full pipeline, including
the tgd → XQuery emission itself.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.xquery import emit_xquery, run_query, serialize


def test_fig5_reproduces_desired_output(paper_instance):
    out = execute(compile_clip(deptstore.mapping_fig5()), paper_instance)
    assert out == deptstore.expected_fig5()
    first = out.findall("department")[0]
    report(
        "Figure 5: CPT preserves containment and siblings",
        [
            ("departments", "2", str(len(out.findall("department")))),
            ("ICT projects", "2", str(len(first.findall("project")))),
            ("ICT employees", "4", str(len(first.findall("employee")))),
        ],
    )


def test_fig5_xquery_engine_agrees(paper_instance):
    tgd = compile_clip(deptstore.mapping_fig5())
    assert run_query(emit_xquery(tgd), paper_instance) == execute(tgd, paper_instance)


@pytest.mark.benchmark(group="fig5")
def test_bench_fig5_compile(benchmark):
    tgd = benchmark(compile_clip, deptstore.mapping_fig5())
    assert len(list(tgd.walk())) == 3


@pytest.mark.benchmark(group="fig5")
def test_bench_fig5_execute(benchmark, large_workload):
    tgd = compile_clip(deptstore.mapping_fig5())
    out = benchmark(execute, tgd, large_workload)
    assert len(out.findall("department")) == 50


@pytest.mark.benchmark(group="fig5")
def test_bench_fig5_emit_and_serialize(benchmark):
    tgd = compile_clip(deptstore.mapping_fig5())

    def emit():
        return serialize(emit_xquery(tgd))

    text = benchmark(emit)
    assert "<department>" in text


@pytest.mark.benchmark(group="fig5")
def test_bench_fig5_xquery(benchmark, small_workload):
    query = emit_xquery(compile_clip(deptstore.mapping_fig5()))
    out = benchmark(run_query, query, small_workload)
    assert out.findall("department")
