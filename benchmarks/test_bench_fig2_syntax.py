"""Figure 2 — the Clip visual syntax in a nutshell.

Figure 2 inventories the language constructs: value mappings (with
optional aggregate labels), builders, build nodes with filtering
conditions, group nodes, and context propagation trees.  This benchmark
exercises the *construction and validity-checking* path for every
construct the figure lists, and times it — the cost of "drawing" a
diagram programmatically.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core.expr import parse_condition
from repro.core.mapping import ClipMapping
from repro.core.validity import check
from repro.scenarios import deptstore


def _draw_full_diagram() -> ClipMapping:
    """One mapping using every Figure 2 construct."""
    clip = ClipMapping(
        deptstore.source_schema(), deptstore.target_schema_grouped_projects()
    )
    group = clip.group("dept/Proj", "project", var="p", by=["$p.pname.value"])
    clip.build(
        ["dept/Proj", "dept/regEmp"],
        "project/employee",
        var=["p2", "r"],
        condition="$p2.@pid = $r.@pid",   # condition label over builder vars
        parent=group,                     # context arc
    )
    clip.value("dept/Proj/pname/value", "project/@name")       # value mapping
    clip.value("dept/regEmp/ename/value", "project/employee/@name")
    return clip


def test_fig2_all_constructs_present_and_valid():
    clip = _draw_full_diagram()
    nodes = clip.build_nodes()
    assert any(n.is_group for n in nodes)                      # group node
    assert any(len(n.incoming) > 1 for n in nodes)             # n incoming builders
    assert any(n.parent is not None for n in nodes)            # context arc
    assert any(n.condition and n.condition.is_join() for n in nodes)
    assert len(clip.value_mappings) == 2
    assert check(clip).is_valid
    report(
        "Figure 2 (syntax): constructs exercised",
        [
            ("value mappings", "thin arrows", str(len(clip.value_mappings))),
            ("build nodes", "1..n in, 0..1 out", str(len(nodes))),
            ("group nodes", "group-by label", str(sum(n.is_group for n in nodes))),
            ("context arcs", "CPT edges", str(sum(n.parent is not None for n in nodes))),
        ],
    )


def test_fig2_aggregate_labels():
    """The ⟨⟨aggregate⟩⟩ label on value mappings."""
    clip = deptstore.mapping_fig9()
    tags = [vm.aggregate.name for vm in clip.value_mappings if vm.is_aggregate]
    assert tags == ["count", "count", "avg"]


@pytest.mark.benchmark(group="fig2")
def test_bench_fig2_diagram_construction(benchmark):
    clip = benchmark(_draw_full_diagram)
    assert len(clip.build_nodes()) == 2


@pytest.mark.benchmark(group="fig2")
def test_bench_fig2_validity_check(benchmark):
    clip = _draw_full_diagram()
    result = benchmark(check, clip)
    assert result.is_valid


@pytest.mark.benchmark(group="fig2")
def test_bench_fig2_condition_parsing(benchmark):
    text = "$p2.@pid = $r.@pid and $r.sal.value > 11000 and $p.pname.value != 'X'"
    condition = benchmark(parse_condition, text)
    assert len(condition.comparisons) == 3
