"""Design-choice ablations (DESIGN.md §5) beyond the per-figure benches.

* **chase on/off** — without chasing over the ``@pid`` constraint, the
  ``{dept-regEmp}`` tableau never joins projects in, and Clio's Section
  V-A mapping loses its join condition: measurably different output and
  different generation cost;
* **generation at scale** — tableau/skeleton computation over wide and
  deep synthetic schemas (the paper's future-work concern: "users …
  could be overwhelmed by schema complexity").
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core.mapping import ValueMapping
from repro.executor import execute
from repro.generation import compute_tableaux, generate_clio, generate_clip
from repro.scenarios import deptstore
from repro.xsd.dsl import attr, elem, schema
from repro.xsd.schema import ElementDecl, Schema
from repro.xsd.types import STRING


def _value_mapping(source, target):
    return [
        ValueMapping(
            [source.value("dept/regEmp/ename/value")],
            target.value("department/employee/@name"),
        )
    ]


class TestChaseAblation:
    def test_chase_controls_the_join(self, paper_instance):
        source = deptstore.source_schema()
        target = deptstore.target_schema_departments()
        vms = _value_mapping(source, target)
        with_chase = generate_clio(source, target, vms)
        without = generate_clio(source, target, vms, use_chase=False)
        joined = execute(with_chase.tgd, paper_instance)
        unjoined = execute(without.tgd, paper_instance)
        report(
            "Chase ablation (Section V-A tableau {dept-Proj-regEmp, @pid=@pid})",
            [
                ("source tableaux (chase on)", "3, one with a join", str(len(with_chase.source_tableaux))),
                ("employees emitted (chase on)", "7 (join pairs)", str(len(joined.findall("department")))),
                ("employees emitted (chase off)", "7 (no join constraint)", str(len(unjoined.findall("department")))),
            ],
        )
        # The chased mapping iterates (dept, Proj, regEmp) joined pairs;
        # without the chase the Proj variable disappears entirely.
        assert any(m.where for m in with_chase.tgd.walk())
        assert all(not m.where for m in without.tgd.walk())


def _wide_schema(tables: int) -> Schema:
    """A flat source with ``tables`` sibling repeating elements."""
    children = [
        elem(f"t{i}", "[0..*]", attr("k", STRING), elem(f"v{i}", text=STRING))
        for i in range(tables)
    ]
    return schema(elem("db", *children))


def _deep_schema(depth: int) -> Schema:
    """A chain of nested repeating elements of the given depth."""
    node = elem("leaf", "[0..*]", attr("x", STRING, required=False), text=None)
    for i in reversed(range(depth)):
        node = elem(f"level{i}", "[0..*]", node)
    return schema(elem("root", node))


@pytest.mark.benchmark(group="ablation-generation")
def test_bench_tableaux_wide_schema(benchmark):
    source = _wide_schema(60)
    tableaux = benchmark(compute_tableaux, source)
    assert len(tableaux) == 60


@pytest.mark.benchmark(group="ablation-generation")
def test_bench_tableaux_deep_schema(benchmark):
    source = _deep_schema(40)
    tableaux = benchmark(compute_tableaux, source)
    assert len(tableaux) == 41  # one per repeating level incl. the leaf


@pytest.mark.benchmark(group="ablation-generation")
def test_bench_clip_generation_wide(benchmark):
    source = _wide_schema(25)
    target = _wide_schema(25)
    vms = [
        ValueMapping([source.value(f"t{i}/v{i}/value")], target.value(f"t{i}/v{i}/value"))
        for i in range(25)
    ]
    result = benchmark(generate_clip, source, target, vms)
    assert len(result.emitted) >= 25


@pytest.mark.benchmark(group="ablation-generation")
def test_bench_clio_vs_clip_generation_cost(benchmark):
    """Clip's extension adds the root-generalization loop on top of
    Clio; the bench isolates its overhead on the Figure 10 input."""
    from repro.scenarios import generic

    source, target = generic.source_schema(), generic.target_schema()
    vms = generic.value_mappings_bd(source, target)

    def both():
        return generate_clio(source, target, vms), generate_clip(source, target, vms)

    clio_result, clip_result = benchmark(both)
    assert len(clio_result.forest) == 2
    assert len(clip_result.forest) == 1
