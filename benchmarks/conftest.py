"""Shared fixtures and helpers for the benchmark harness.

Every benchmark module regenerates one paper artifact (a figure's
printed output or Table I), asserts the reproduced result, and times
the pipeline on the paper's instance and on scaled synthetic workloads.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance


@pytest.fixture(scope="session")
def paper_instance():
    """The two-department instance printed in Section I-A."""
    return deptstore.source_instance()


@pytest.fixture(scope="session")
def small_workload():
    """~10× the paper's instance."""
    return make_deptstore_instance(
        DeptstoreSpec(departments=10, projects_per_dept=4, employees_per_dept=12)
    )


@pytest.fixture(scope="session")
def large_workload():
    """~100× the paper's instance."""
    return make_deptstore_instance(
        DeptstoreSpec(departments=50, projects_per_dept=8, employees_per_dept=40)
    )


def report(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a paper-vs-measured table under the benchmark output."""
    width = max(len(r[0]) for r in rows)
    print(f"\n== {title}")
    print(f"   {'artifact'.ljust(width)}  {'paper':>28}  measured")
    for name, paper, measured in rows:
        print(f"   {name.ljust(width)}  {paper:>28}  {measured}")
