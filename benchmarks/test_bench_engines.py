"""Engine comparison: the three renderings of the same mapping.

Not a paper artifact, but the measurement behind the paper's claim that
the mapping formalism is "independent of the actual transformation
language": the same tgd runs as

* the direct executor (our reference semantics),
* the generated XQuery through its interpreter,
* the generated XSLT through its interpreter (supported subset),

with identical outputs and comparable costs.
"""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.xquery import emit_xquery, run_query
from repro.xslt import apply_stylesheet, emit_xslt


@pytest.fixture(scope="module")
def tgd():
    return compile_clip(deptstore.mapping_fig5())


def test_three_engines_identical(tgd, small_workload):
    a = execute(tgd, small_workload)
    b = run_query(emit_xquery(tgd), small_workload)
    c = apply_stylesheet(emit_xslt(tgd), small_workload)
    assert a == b == c


@pytest.mark.benchmark(group="engines-fig5")
def test_bench_engine_executor(benchmark, tgd, small_workload):
    out = benchmark(execute, tgd, small_workload)
    assert out.findall("department")


@pytest.mark.benchmark(group="engines-fig5")
def test_bench_engine_xquery(benchmark, tgd, small_workload):
    query = emit_xquery(tgd)
    out = benchmark(run_query, query, small_workload)
    assert out.findall("department")


@pytest.mark.benchmark(group="engines-fig5")
def test_bench_engine_xslt(benchmark, tgd, small_workload):
    sheet = emit_xslt(tgd)
    out = benchmark(apply_stylesheet, sheet, small_workload)
    assert out.findall("department")


@pytest.mark.benchmark(group="engines-emit")
def test_bench_emit_xquery(benchmark, tgd):
    query = benchmark(emit_xquery, tgd)
    assert query.tag == "target"


@pytest.mark.benchmark(group="engines-emit")
def test_bench_emit_xslt(benchmark, tgd):
    sheet = benchmark(emit_xslt, tgd)
    assert sheet.body
