"""Composition benchmarks: fused one-pass plans vs. two-stage chains.

The ISSUE-10 performance contract: for an A→B→C mapping chain inside
the composable fragment, the fused one-pass plan produced by
:func:`repro.algebra.compose` must run at least 1.3× faster than
executing the two stages sequentially at the Figure 7 L geometry —
the fused plan never materializes the intermediate B document.  The
``compose-chain`` benchmark group feeds the committed ``BENCH_compose``
baseline (regression-gated by ``compare_bench.py`` in CI), and
:func:`test_compose_speedup_floor` enforces the ratio in-test with
best-of-N timing so the gate holds on noisy runners too.  Byte-identity
of fused vs. sequential output is asserted at every geometry before any
clock starts: a fusion that changes one output byte is a bug, not a win.

The chain: stage 1 copies the deptstore source into a ``staff``
intermediate (every department, every employee — the expensive full
materialization); stage 2 filters the intermediate down to the
high-pay workers, flattening division context into each row.  Fusion
pushes the stage-2 filter all the way to the source scan.
"""

from __future__ import annotations

import time

import pytest

from repro.algebra import compose
from repro.core.compile import compile_clip
from repro.core.mapping import ClipMapping
from repro.runtime import plan_from_tgd
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance
from repro.xml.serialize import to_xml
from repro.xsd.dsl import attr, elem, schema
from repro.xsd.types import INT, STRING

#: The grouping-heavy Figure 7 scaling-sweep geometries (L is the
#: acceptance point; XL confirms the gap widens with the intermediate).
_GEOMETRIES = {
    "L": DeptstoreSpec(departments=40, projects_per_dept=6,
                       employees_per_dept=25),
    "XL": DeptstoreSpec(departments=80, projects_per_dept=8,
                        employees_per_dept=40),
}

#: Best-of-N timing for the in-test speedup floor.
_TIMING_ROUNDS = 5

#: The ISSUE-10 acceptance floor: fused ≥ 1.3× two-stage sequential.
_SPEEDUP_FLOOR = 1.3

#: Stage-2 pay filter; workload salaries are drawn from
#: ``range(8000, 32000, 500)`` so this keeps roughly the top half.
_PAY_THRESHOLD = 20000

_B_SCHEMA = schema(
    elem(
        "staff",
        elem(
            "division", "[0..*]", attr("dn", STRING),
            elem(
                "worker", "[0..*]",
                attr("wname", STRING), attr("pay", INT),
            ),
        ),
    )
)

_C_SCHEMA = schema(
    elem(
        "report",
        elem("rich", "[0..*]", attr("who", STRING), attr("unit", STRING)),
    )
)


def _chain():
    """The A→B copy stage and the B→C filter stage."""
    m_ab = ClipMapping(deptstore.source_schema(), _B_SCHEMA)
    d = m_ab.build("dept", "division", var="d")
    m_ab.build("dept/regEmp", "division/worker", var="e", parent=d)
    m_ab.value("dept/dname/value", "division/@dn")
    m_ab.value("dept/regEmp/ename/value", "division/worker/@wname")
    m_ab.value("dept/regEmp/sal/value", "division/worker/@pay")

    m_bc = ClipMapping(_B_SCHEMA, _C_SCHEMA)
    ctx = m_bc.context("division", var="x")
    m_bc.build(
        "division/worker", "rich", var="w", parent=ctx,
        condition=f"$w.@pay > {_PAY_THRESHOLD}",
    )
    m_bc.value("division/worker/@wname", "rich/@who")
    m_bc.value("division/@dn", "rich/@unit")
    return m_ab, m_bc


def _stage_plans():
    m_ab, m_bc = _chain()
    return (
        plan_from_tgd(compile_clip(m_ab), optimize=True),
        plan_from_tgd(compile_clip(m_bc), optimize=True),
    )


def _fused_plan():
    m_ab, m_bc = _chain()
    return plan_from_tgd(compose(m_ab, m_bc), optimize=True)


@pytest.fixture(scope="module")
def geometry_instances():
    return {
        size: make_deptstore_instance(spec)
        for size, spec in _GEOMETRIES.items()
    }


@pytest.mark.parametrize("size", ["L", "XL"])
@pytest.mark.benchmark(group="compose-chain")
def test_bench_compose_sequential(benchmark, geometry_instances, size):
    first, second = _stage_plans()
    out = benchmark.pedantic(
        lambda instance: second.run(first.run(instance)),
        args=(geometry_instances[size],),
        rounds=3, iterations=1,
    )
    assert out.findall("rich")


@pytest.mark.parametrize("size", ["L", "XL"])
@pytest.mark.benchmark(group="compose-chain")
def test_bench_compose_fused(benchmark, geometry_instances, size):
    fused = _fused_plan()
    out = benchmark.pedantic(
        fused.run, args=(geometry_instances[size],),
        rounds=3, iterations=1,
    )
    assert out.findall("rich")


def _best_of(run, instance, rounds: int = _TIMING_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        run(instance)
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("size", ["L", "XL"])
def test_compose_speedup_floor(geometry_instances, size):
    """The acceptance gate proper: best-of-N fused time beats best-of-N
    two-stage time by at least the 1.3× floor, and the two paths
    serialize byte-identical targets first (warm-up doubles as the
    correctness check)."""
    first, second = _stage_plans()
    fused = _fused_plan()
    instance = geometry_instances[size]

    def sequential(doc):
        return second.run(first.run(doc))

    assert to_xml(fused.run(instance)) == to_xml(sequential(instance)), (
        f"{size}: fused and sequential outputs diverge"
    )
    sequential_best = _best_of(sequential, instance)
    fused_best = _best_of(fused.run, instance)
    speedup = sequential_best / fused_best
    assert speedup >= _SPEEDUP_FLOOR, (
        f"{size}: fused speedup {speedup:.2f}× below the "
        f"{_SPEEDUP_FLOOR}× floor (sequential "
        f"{sequential_best * 1000:.1f} ms, fused {fused_best * 1000:.1f} ms)"
    )
