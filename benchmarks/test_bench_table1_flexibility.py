"""Table I — flexibility of Clip.

Regenerates the paper's evaluation table: for each of the four examples
(the same number of value mappings as the paper reports), count how many
more *meaningful* mappings Clip can draw than Clio generates.  The
paper's numbers are lower bounds; the reproduction target is that every
measured count meets its row's bound, with Clip strictly more flexible
than Clio on every row.

Paper (Table I):

    Example               Value mappings   Extra meaningful with Clip
    Figure 1 in [2]              7                    4
    Figure 3 in [2]              4                    1
    Figure 1 in [1]              3                    1
    Figure 1 (this paper)        2                    4
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.generation.flexibility import measure_flexibility
from repro.scenarios.published import TABLE1_ROWS


@pytest.fixture(scope="module")
def measurements():
    out = []
    for factory in TABLE1_ROWS:
        example = factory()
        result = measure_flexibility(
            example.source,
            example.target,
            list(example.value_mappings),
            example.witness,
        )
        out.append((example, result))
    return out


def test_table1_reproduction(measurements):
    rows = []
    for example, result in measurements:
        rows.append(
            (
                f"{example.row} ({example.paper_value_mappings} vms)",
                f"extra >= {example.paper_extra}",
                f"extra = {result.extra} "
                f"({result.candidates_valid}/{result.candidates_total} valid candidates)",
            )
        )
        assert result.extra >= example.paper_extra, example.row
    report("Table I: flexibility of Clip (lower bounds)", rows)


def test_table1_clip_strictly_more_flexible(measurements):
    for example, result in measurements:
        assert len(result.clip_outputs) > len(result.clio_outputs), example.row


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("factory", TABLE1_ROWS, ids=lambda f: f.__name__)
def test_bench_table1_measurement(benchmark, factory):
    """Time the full enumerate–validate–compile–execute–dedup loop."""
    example = factory()
    result = benchmark(
        measure_flexibility,
        example.source,
        example.target,
        list(example.value_mappings),
        example.witness,
    )
    assert result.extra >= example.paper_extra
