"""Batch runtime throughput: plan reuse vs. per-document recompilation.

Section VI's deployment story — compile the mapping once, apply it to
arbitrarily many documents — made operational.  The measurement
contrasts:

* **naive** — one fresh :class:`repro.Transformer` per document, the
  way a stateless per-request service would do it (validity check +
  tgd compilation on every call);
* **batched** — one :class:`repro.runtime.BatchRunner` over the same
  documents, retrieving the compiled plan from the cache per
  application (one miss, N−1 hits).

The assertions pin the runtime's contract on a 100-document workload:
batched is at least 2× faster, the metrics report at least 99 cache
hits, and the outputs are identical document-for-document.
"""

from __future__ import annotations

import time

import pytest

from conftest import report
from repro import Transformer
from repro.runtime import BatchRunner, PlanCache
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance

DOCUMENTS = 100


@pytest.fixture(scope="module")
def mapping():
    return deptstore.mapping_fig4()


@pytest.fixture(scope="module")
def documents():
    """100 small instances — the shape of a heavy-traffic workload
    (many requests, compact payloads), where per-request compilation
    dominates per-request evaluation."""
    return [
        make_deptstore_instance(
            DeptstoreSpec(
                departments=1,
                projects_per_dept=1,
                employees_per_dept=2,
                seed=seed,
            )
        )
        for seed in range(DOCUMENTS)
    ]


def _naive(mapping, documents):
    return [Transformer(mapping)(doc) for doc in documents]


def _batched(mapping, documents):
    return BatchRunner(mapping, cache=PlanCache()).run(documents)


def _best_of(repeats, fn, *args):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.mark.benchmark(group="batch-100docs")
def test_bench_naive_transformer_per_document(benchmark, mapping, documents):
    results = benchmark(_naive, mapping, documents)
    assert len(results) == DOCUMENTS


@pytest.mark.benchmark(group="batch-100docs")
def test_bench_batched_plan_reuse(benchmark, mapping, documents):
    batch = benchmark(_batched, mapping, documents)
    assert len(batch) == DOCUMENTS
    assert batch.metrics.cache_misses == 1
    assert batch.metrics.cache_hits == DOCUMENTS - 1


@pytest.mark.benchmark(group="batch-speedup")
def test_batched_at_least_twice_as_fast(benchmark, mapping, documents):
    """The acceptance measurement: plan reuse beats per-document
    recompilation by ≥ 2× on 100 documents, with the metrics JSON
    accounting for ≥ 99 cache hits."""
    naive_seconds, naive_results = _best_of(3, _naive, mapping, documents)
    batched_seconds, batch = _best_of(3, _batched, mapping, documents)
    metrics_doc = batch.metrics.to_dict()

    assert batch.results == naive_results
    assert metrics_doc["plan_cache"]["hits"] >= DOCUMENTS - 1
    assert metrics_doc["documents"] == DOCUMENTS
    speedup = naive_seconds / batched_seconds
    report(
        "batch runtime, 100 documents",
        [
            ("naive (compile per doc)", "—", f"{naive_seconds * 1e3:.1f} ms"),
            ("batched (plan cache)", "—", f"{batched_seconds * 1e3:.1f} ms"),
            ("speedup", "≥ 2×", f"{speedup:.1f}×"),
            (
                "cache hits",
                "≥ 99",
                str(metrics_doc["plan_cache"]["hits"]),
            ),
        ],
    )
    assert speedup >= 2.0, (
        f"batched path only {speedup:.2f}× faster "
        f"({naive_seconds:.4f}s vs {batched_seconds:.4f}s)"
    )
    # Register the batched path with the benchmark harness so the CI
    # smoke run records it in BENCH_batch.json.
    benchmark(_batched, mapping, documents)


@pytest.mark.benchmark(group="batch-workers")
def test_bench_batched_two_workers(benchmark, mapping, documents):
    """Process fan-out on the same workload (includes pool start-up —
    worth it for heavier documents, measured here for the record)."""
    batch = benchmark(
        lambda: BatchRunner(mapping, workers=2, cache=PlanCache()).run(documents)
    )
    assert len(batch) == DOCUMENTS
    assert batch.results == _batched(mapping, documents).results
