"""Figure 6 — Cartesian product and join constrained by a CPT.

Regenerates the paper's join output and its two variants (per-dept
Cartesian product; whole-document Cartesian product) and benchmarks
all three — the join-vs-product ablation.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core.compile import compile_clip
from repro.executor import execute
from repro.scenarios import deptstore
from repro.xquery import emit_xquery, run_query
from repro.xsd.constraints import suggest_join


def test_fig6_reproduces_paper_output(paper_instance):
    out = execute(compile_clip(deptstore.mapping_fig6()), paper_instance)
    assert out.equals_canonically(deptstore.expected_fig6())
    per_dept = execute(
        compile_clip(deptstore.mapping_fig6(join_condition=False)), paper_instance
    )
    overall = execute(
        compile_clip(
            deptstore.mapping_fig6(join_condition=False, outer_context=False)
        ),
        paper_instance,
    )
    report(
        "Figure 6: join and its two ablations",
        [
            ("join pairs", "7", str(len(out.findall("project-emp")))),
            ("per-dept Cartesian", "14 (2×4 + 2×3)", str(len(per_dept.findall("project-emp")))),
            ("document Cartesian", "28 (4 × 7)", str(len(overall.findall("project-emp")))),
        ],
    )


def test_fig6_join_condition_is_suggested_by_the_keyref():
    """'This join condition … can be automatically suggested using the
    existing referential integrity constraint.'"""
    source = deptstore.source_schema()
    suggestion = suggest_join(
        source, source.element("dept/Proj"), source.element("dept/regEmp")
    )
    assert suggestion is not None
    left, right = suggestion
    assert left.attribute == "pid" and right.attribute == "pid"


@pytest.mark.benchmark(group="fig6")
def test_bench_fig6_join(benchmark, small_workload):
    tgd = compile_clip(deptstore.mapping_fig6())
    out = benchmark(execute, tgd, small_workload)
    assert out.findall("project-emp")


@pytest.mark.benchmark(group="fig6")
def test_bench_fig6_per_dept_cartesian(benchmark, small_workload):
    tgd = compile_clip(deptstore.mapping_fig6(join_condition=False))
    out = benchmark(execute, tgd, small_workload)
    assert out.findall("project-emp")


@pytest.mark.benchmark(group="fig6")
def test_bench_fig6_document_cartesian(benchmark, small_workload):
    tgd = compile_clip(
        deptstore.mapping_fig6(join_condition=False, outer_context=False)
    )
    out = benchmark(execute, tgd, small_workload)
    # 40 projects × 120 employees document-wide
    assert len(out.findall("project-emp")) == 40 * 120


@pytest.mark.benchmark(group="fig6")
def test_bench_fig6_xquery(benchmark, small_workload):
    query = emit_xquery(compile_clip(deptstore.mapping_fig6()))
    out = benchmark(run_query, query, small_workload)
    assert out.findall("project-emp")
