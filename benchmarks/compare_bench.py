#!/usr/bin/env python
"""Benchmark regression gate: compare a pytest-benchmark JSON report
against a committed baseline and fail on mean-time regressions.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--threshold 0.25] [--alias CURRENT_NAME=BASELINE_NAME ...]

Benchmarks are matched by ``fullname``.  A benchmark whose current
mean exceeds the baseline mean by more than ``threshold`` (default
25%) is a regression; any regression fails the run with exit code 1.
Benchmarks present on only one side are reported but do not fail the
gate (new benchmarks have no baseline; removed ones have no current),
so adding a benchmark never requires touching the baseline of the
others.

``--alias`` compares a current benchmark against a differently-named
baseline entry: the tracing-overhead gate aliases its untraced arm
onto the scaling sweep's ``[L-optimized]`` entry, measuring "does the
instrumented code path cost anything when tracing is off" against the
pre-instrumentation baseline.  Aliases may be given repeatedly; names
are matched by ``fullname`` or by their unqualified suffix (the part
after ``::``).
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict[str, float]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    benchmarks = document.get("benchmarks", [])
    return {
        bench["fullname"]: float(bench["stats"]["mean"])
        for bench in benchmarks
    }


def resolve_name(name: str, means: dict[str, float]) -> str | None:
    """The key in ``means`` that ``name`` designates: an exact
    ``fullname`` match, or a unique match on the unqualified suffix."""
    if name in means:
        return name
    matches = [full for full in means if full.split("::", 1)[-1] == name]
    if len(matches) == 1:
        return matches[0]
    return None


def apply_aliases(
    baseline: dict[str, float],
    current: dict[str, float],
    aliases: list[str],
) -> dict[str, float]:
    """Rewrite the baseline so each aliased current entry has a
    baseline entry under its own name, taken from the alias target."""
    rewritten = dict(baseline)
    for alias in aliases:
        if "=" not in alias:
            raise SystemExit(
                f"error: bad --alias {alias!r}; expected CURRENT=BASELINE"
            )
        cur_name, base_name = alias.split("=", 1)
        cur_full = resolve_name(cur_name, current)
        base_full = resolve_name(base_name, baseline)
        if cur_full is None:
            raise SystemExit(
                f"error: --alias current benchmark {cur_name!r} not found"
            )
        if base_full is None:
            raise SystemExit(
                f"error: --alias baseline benchmark {base_name!r} not found"
            )
        rewritten[cur_full] = baseline[base_full]
        print(f"alias: {cur_full} gated against {base_full}")
    return rewritten


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
) -> list[str]:
    """Human-readable regression lines; empty means the gate passes."""
    regressions: list[str] = []
    for fullname in sorted(baseline):
        if fullname not in current:
            print(f"note: {fullname}: in baseline only (skipped)")
            continue
        base_mean = baseline[fullname]
        cur_mean = current[fullname]
        if base_mean <= 0:
            continue
        ratio = cur_mean / base_mean
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "REGRESSION"
            regressions.append(
                f"{fullname}: mean {base_mean * 1e3:.3f}ms -> "
                f"{cur_mean * 1e3:.3f}ms ({ratio:.2f}x baseline, "
                f"threshold {1.0 + threshold:.2f}x)"
            )
        print(
            f"{verdict:>10}  {fullname}  "
            f"{base_mean * 1e3:.3f}ms -> {cur_mean * 1e3:.3f}ms "
            f"({ratio:.2f}x)"
        )
    for fullname in sorted(set(current) - set(baseline)):
        print(f"note: {fullname}: no baseline entry (skipped)")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional mean increase before failing "
             "(default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--alias",
        action="append",
        default=[],
        metavar="CURRENT=BASELINE",
        help="gate a current benchmark against a differently-named "
             "baseline entry (repeatable)",
    )
    args = parser.parse_args(argv)
    baseline = load_means(args.baseline)
    current = load_means(args.current)
    if args.alias:
        baseline = apply_aliases(baseline, current, args.alias)
    regressions = compare(baseline, current, args.threshold)
    if regressions:
        print(
            f"\n{len(regressions)} benchmark regression(s) beyond "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nbenchmark gate: no regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
