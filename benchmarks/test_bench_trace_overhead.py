"""Tracing overhead: the cost of observation, measured and gated.

Two claims from :mod:`repro.runtime.trace` are enforced here on the
Figure 6 join workload (the L geometry of the scaling sweep, so the
disabled arm is directly comparable against the committed
``BENCH_scaling.json`` baseline):

* **disabled tracing is free** — ``plan.run(instance)`` with no tracer
  takes the exact untraced code path (one falsy guard per call), so
  its mean must stay within 3% of the pre-tracing baseline.  CI runs
  ``compare_bench.py --threshold 0.03`` with an alias mapping the
  untraced arm onto ``test_bench_scaling_join_fig6[L-optimized]``;
* **enabled tracing is cheap** — spans are recorded at plan/level
  granularity (snapshot/diff of the engine's own counters), never
  inside the evaluation loops, so a traced run stays well under 2×
  the untraced mean even on this join-heavy geometry.
"""

from __future__ import annotations

import pytest

from repro.core.compile import compile_clip
from repro.executor import prepare
from repro.runtime.trace import SpanTracer
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance

#: The scaling sweep's L join geometry, verbatim.
_SPEC = DeptstoreSpec(departments=16, projects_per_dept=32,
                      employees_per_dept=160)


@pytest.fixture(scope="module")
def join_instance():
    return make_deptstore_instance(_SPEC)


@pytest.fixture(scope="module")
def join_plan():
    return prepare(compile_clip(deptstore.mapping_fig6()), optimize=True)


@pytest.mark.benchmark(group="trace-overhead")
def test_bench_trace_disabled(benchmark, join_plan, join_instance):
    """The untraced arm — aliased against the scaling baseline's
    ``[L-optimized]`` entry by the CI overhead gate."""
    out = benchmark.pedantic(
        join_plan.run, args=(join_instance,),
        rounds=7, iterations=1, warmup_rounds=1,
    )
    assert out.size() > _SPEC.departments


@pytest.mark.benchmark(group="trace-overhead")
def test_bench_trace_enabled(benchmark, join_plan, join_instance):
    """The traced arm: a fresh tracer per round, full execute/plan/
    level span recording."""

    def run_traced():
        tracer = SpanTracer(seed="bench")
        with tracer.span("bench"):
            result = join_plan.run(join_instance, trace=tracer)
        trace = tracer.to_trace()
        assert trace.find("execute") is not None
        return result

    out = benchmark.pedantic(
        run_traced, rounds=7, iterations=1, warmup_rounds=1,
    )
    assert out.size() > _SPEC.departments
