"""Codegen backend benchmarks: generated Python vs. the interpreter.

The ISSUE-7 performance contract: on the paper's two hardest workloads
— the Figure 6 join and the Figure 7 grouping + join — the specialized
generated-Python programs of :mod:`repro.executor.codegen` must run at
least 1.5× faster than the interpreted optimized plans at the L and XL
geometries.  The ``codegen-fig6``/``codegen-fig7`` benchmark groups
feed the committed ``BENCH_codegen`` baseline (regression-gated by
``compare_bench.py`` in CI), and :func:`test_codegen_speedup_floor`
enforces the ratio in-test with best-of-N timing so the gate holds on
noisy runners too.  Byte-identity is asserted at every geometry: a
speedup that changes one output byte is a bug, not a win.
"""

from __future__ import annotations

import time

import pytest

from repro.core.compile import compile_clip
from repro.executor import prepare
from repro.scenarios import deptstore
from repro.scenarios.workload import DeptstoreSpec, make_deptstore_instance
from repro.xml.serialize import to_xml

#: Join-heavy Figure 6 geometries (the scaling sweep's L/XL) and the
#: grouping-heavy Figure 7 geometries.
_GEOMETRIES = {
    "fig6": {
        "L": DeptstoreSpec(departments=16, projects_per_dept=32,
                           employees_per_dept=160),
        "XL": DeptstoreSpec(departments=24, projects_per_dept=48,
                            employees_per_dept=320),
    },
    "fig7": {
        "L": DeptstoreSpec(departments=40, projects_per_dept=6,
                           employees_per_dept=25),
        "XL": DeptstoreSpec(departments=80, projects_per_dept=8,
                            employees_per_dept=40),
    },
}

_MAPPINGS = {
    "fig6": deptstore.mapping_fig6,
    "fig7": deptstore.mapping_fig7,
}

#: Best-of-N timing for the in-test speedup floor.
_TIMING_ROUNDS = 5

#: The ISSUE-7 acceptance floor: codegen ≥ 1.5× interpreted-optimized.
_SPEEDUP_FLOOR = 1.5


@pytest.fixture(scope="module")
def geometry_instances():
    return {
        fig: {
            size: make_deptstore_instance(spec)
            for size, spec in sizes.items()
        }
        for fig, sizes in _GEOMETRIES.items()
    }


def _plans(fig: str):
    tgd = compile_clip(_MAPPINGS[fig]())
    return (
        prepare(tgd, optimize=True, exec_mode="interp"),
        prepare(tgd, optimize=True, exec_mode="codegen"),
    )


@pytest.mark.parametrize("mode", ["interp", "codegen"])
@pytest.mark.parametrize("size", ["L", "XL"])
@pytest.mark.benchmark(group="codegen-fig6")
def test_bench_codegen_join_fig6(benchmark, geometry_instances, size, mode):
    plan = prepare(
        compile_clip(deptstore.mapping_fig6()), optimize=True, exec_mode=mode
    )
    out = benchmark.pedantic(
        plan.run, args=(geometry_instances["fig6"][size],),
        rounds=3, iterations=1,
    )
    assert out.size() > _GEOMETRIES["fig6"][size].departments


@pytest.mark.parametrize("mode", ["interp", "codegen"])
@pytest.mark.parametrize("size", ["L", "XL"])
@pytest.mark.benchmark(group="codegen-fig7")
def test_bench_codegen_grouping_fig7(benchmark, geometry_instances, size, mode):
    plan = prepare(
        compile_clip(deptstore.mapping_fig7()), optimize=True, exec_mode=mode
    )
    out = benchmark.pedantic(
        plan.run, args=(geometry_instances["fig7"][size],),
        rounds=3, iterations=1,
    )
    assert out.findall("project")


def _best_of(plan, instance, rounds: int = _TIMING_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        plan.run(instance)
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("fig", list(_GEOMETRIES))
@pytest.mark.parametrize("size", ["L", "XL"])
def test_codegen_speedup_floor(geometry_instances, fig, size):
    """The acceptance gate proper: best-of-N codegen time beats
    best-of-N interpreted time by at least the 1.5× floor, and the two
    modes serialize byte-identical targets first (warm-up doubles as
    the correctness check)."""
    interp, codegen = _plans(fig)
    instance = geometry_instances[fig][size]
    assert to_xml(codegen.run(instance)) == to_xml(interp.run(instance)), (
        f"{fig} {size}: codegen and interpreted outputs diverge"
    )
    interp_best = _best_of(interp, instance)
    codegen_best = _best_of(codegen, instance)
    speedup = interp_best / codegen_best
    assert speedup >= _SPEEDUP_FLOOR, (
        f"{fig} {size}: codegen speedup {speedup:.2f}× below the "
        f"{_SPEEDUP_FLOOR}× floor (interp {interp_best * 1000:.1f} ms, "
        f"codegen {codegen_best * 1000:.1f} ms)"
    )
