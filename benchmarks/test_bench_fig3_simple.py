"""Figure 3 — simple mapping with minimum cardinality.

Regenerates the paper's printed output (three employees in a single
department) and benchmarks the compile / execute / XQuery pipeline.
Includes the ablation the paper discusses: the *universal solution*
(Clio-style per-iteration department) against Clip's minimum-cardinality
solution.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.core.compile import compile_clip
from repro.core.tgd import NestedTgd, TargetGenerator, TgdMapping
from repro.executor import execute
from repro.scenarios import deptstore
from repro.xquery import emit_xquery, run_query


def _universal_variant(tgd: NestedTgd) -> NestedTgd:
    """Quantify every target generator: one department per iteration —
    the universal solution the paper contrasts with."""

    def requantify(mapping: TgdMapping) -> TgdMapping:
        return TgdMapping(
            source_gens=mapping.source_gens,
            where=mapping.where,
            target_gens=tuple(
                TargetGenerator(g.var, g.expr, quantified=True)
                for g in mapping.target_gens
            ),
            assignments=mapping.assignments,
            submappings=tuple(requantify(s) for s in mapping.submappings),
            skolem=mapping.skolem,
            grouped_var=mapping.grouped_var,
        )

    return NestedTgd(
        tuple(requantify(m) for m in tgd.roots),
        functions=tgd.functions,
        source_root=tgd.source_root,
        target_root=tgd.target_root,
    )


def test_fig3_reproduces_paper_output(paper_instance):
    tgd = compile_clip(deptstore.mapping_fig3())
    out = execute(tgd, paper_instance)
    assert out == deptstore.expected_fig3()
    universal = execute(_universal_variant(tgd), paper_instance)
    report(
        "Figure 3: minimum cardinality vs universal solution",
        [
            ("departments (min-cardinality)", "1", str(len(out.findall("department")))),
            (
                "departments (universal)",
                "one per employee (3)",
                str(len(universal.findall("department"))),
            ),
            ("employees", "3 (> 11000 strict)", str(len(out.findall("department")[0].findall("employee")))),
        ],
    )


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_compile(benchmark):
    tgd = benchmark(compile_clip, deptstore.mapping_fig3())
    assert tgd.roots


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_execute(benchmark, large_workload):
    tgd = compile_clip(deptstore.mapping_fig3())
    out = benchmark(execute, tgd, large_workload)
    assert len(out.findall("department")) == 1


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_xquery(benchmark, small_workload):
    query = emit_xquery(compile_clip(deptstore.mapping_fig3()))
    out = benchmark(run_query, query, small_workload)
    assert out.findall("department")


@pytest.mark.benchmark(group="fig3")
def test_bench_fig3_universal_ablation(benchmark, small_workload):
    """The universal solution creates far more elements — measurably."""
    tgd = _universal_variant(compile_clip(deptstore.mapping_fig3()))
    out = benchmark(execute, tgd, small_workload)
    assert len(out.findall("department")) > 1
