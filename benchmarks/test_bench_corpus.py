"""Corpus generation and fuzz-farm throughput.

Not a paper artifact — the corpus is this repo's own regression
substrate — but its cost profile gates how big the nightly fuzz window
can be, so it is measured alongside the figures:

* **generation throughput** — seeded triples per second (all six axes,
  includes the per-case validity check and compile gate);
* **farm throughput** — full differential cross-check (tgd optimized
  vs naive vs XQuery, plus XSLT where eligible) per case;
* **determinism overhead** — fingerprinting the whole corpus, which a
  byte-identity assertion pays on every CI run.

No committed baseline gates these yet; the numbers inform the
``--budget-seconds`` choice for the CI fuzz leg.
"""

from __future__ import annotations

import pytest

from repro.fuzz import FuzzFarm
from repro.generation import generate_corpus
from repro.runtime import PlanCache

_SEED = 7
_COUNT = 60


@pytest.mark.benchmark(group="corpus")
def test_bench_corpus_generation(benchmark):
    cases = benchmark.pedantic(
        generate_corpus, args=(_SEED, _COUNT),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    assert len(cases) == _COUNT


@pytest.mark.benchmark(group="corpus")
def test_bench_corpus_fingerprints(benchmark):
    cases = generate_corpus(_SEED, _COUNT)

    def fingerprint_all():
        return [case.fingerprint() for case in cases]

    prints = benchmark.pedantic(
        fingerprint_all, rounds=5, iterations=1, warmup_rounds=1
    )
    assert len(set(prints)) == _COUNT


@pytest.mark.benchmark(group="corpus")
def test_bench_fuzz_farm_throughput(benchmark):
    """The full differential sweep; plans are cached across rounds, so
    the steady-state number reflects execution + comparison, not
    compilation."""
    cases = generate_corpus(_SEED, _COUNT)
    farm = FuzzFarm(cache=PlanCache(maxsize=1024))

    def sweep():
        report = farm.run_corpus(_SEED, _COUNT)
        assert report.status == "ok"
        return report

    report = benchmark.pedantic(sweep, rounds=3, iterations=1,
                                warmup_rounds=1)
    assert report.cases == len(cases)
